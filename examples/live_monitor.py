#!/usr/bin/env python3
"""Live hijack monitoring over a BMP-over-Kafka feed (§3.3.2, §6).

The live half of the paper's pitch: instead of replaying dump files, a
BGPCorsaro pipeline consumes a near-realtime BMP feed à la OpenBMP — routers
publish RFC 7854 BMP messages onto a Kafka topic keyed by router, and
`BGPStream(live=...)` turns them into the exact record/elem model of the
historical path.

The script simulates one monitored router: a peer session comes up,
announces its table (the Peer Up RIB-in snapshot), a hijacker AS starts
originating a more-specific of a monitored prefix mid-stream, and the
session finally goes down (synthesising withdrawals for everything it had
announced).  A pfxmonitor plugin cut into 5-minute bins watches the
victim's address space; the origin-ASN count jumping from 1 to 2 exposes
the hijack, and the bounded window (`add_interval_filter(t0, t1)`) makes
the bins close deterministically even though the source is a live feed.

Run:  python examples/live_monitor.py
"""

from __future__ import annotations

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.message import BGPOpen, BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bmp import BMPFeedProducer, BMPMessage, BMPPeerHeader
from repro.core import BGPStream
from repro.corsaro import BGPCorsaro
from repro.corsaro.plugins import PrefixMonitorPlugin
from repro.kafka.broker import MessageBroker

ROUTER = "rtr1.example"
VICTIM_ASN = 65010
HIJACKER_ASN = 65666
VICTIM_PREFIX = "203.0.113.0/24"
HIJACKED_MORE_SPECIFIC = "203.0.113.128/25"
T0 = 1_450_000_000


def announce(peer, prefixes, origin):
    """One Route Monitoring message announcing ``prefixes`` from ``origin``."""
    update = BGPUpdate(
        announced=[Prefix.from_string(p) for p in prefixes],
        attributes=PathAttributes(
            as_path=ASPath.from_string(f"{peer.asn} 65002 {origin}"),
            next_hop=peer.address,
        ),
    )
    return BMPMessage.route_monitoring(peer, update)


def simulate_feed(broker: MessageBroker) -> None:
    """Publish the monitored router's BMP session onto the feed topic."""
    producer = BMPFeedProducer(broker, router=ROUTER)

    def peer_at(ts):
        return BMPPeerHeader(address="10.1.2.3", asn=65001, timestamp_sec=ts)

    # The feed opens; the monitored session reaches Established and
    # re-announces its Adj-RIB-In (the Peer Up RIB-in snapshot).
    producer.publish(BMPMessage.initiation([]))
    producer.publish(
        BMPMessage.peer_up(
            peer_at(T0),
            local_address="10.0.0.1",
            local_port=179,
            remote_port=40123,
            sent_open=BGPOpen(asn=65000, bgp_id="10.0.0.1"),
            received_open=BGPOpen(asn=65001, bgp_id="192.0.2.1"),
        )
    )
    producer.publish(
        announce(peer_at(T0 + 10), [VICTIM_PREFIX, "198.51.100.0/24"], VICTIM_ASN)
    )

    # 20 minutes in, the hijacker shows up on a more-specific.
    producer.publish(
        announce(peer_at(T0 + 1200), [HIJACKED_MORE_SPECIFIC], HIJACKER_ASN)
    )

    # 40 minutes in, the session dies: the converter synthesises explicit
    # withdrawals for everything the peer had announced, then a state elem.
    producer.publish(BMPMessage.peer_down(peer_at(T0 + 2400), reason=4))


def main() -> None:
    broker = MessageBroker()
    simulate_feed(broker)

    stream = BGPStream(live={"broker": broker, "max_empty_polls": 1, "poll_interval": 0.0})
    stream.add_interval_filter(T0, T0 + 3000)  # until_ts: bins close deterministically

    monitor = PrefixMonitorPlugin([Prefix.from_string(VICTIM_PREFIX)])
    corsaro = BGPCorsaro(stream, [monitor], bin_size=300)

    print(f"live pfxmonitor over {VICTIM_PREFIX} (bin = 300 s)")
    print("bin offset | unique prefixes | unique origin ASNs")
    for output in corsaro.process():
        if output.interval_start == -1:
            continue
        value = output.value
        marker = "  <-- hijack!" if value.unique_origin_asns > 1 else ""
        print(
            f"{output.interval_start - T0:>10} | {value.unique_prefixes:>15} "
            f"| {value.unique_origin_asns:>18}{marker}"
        )


if __name__ == "__main__":
    main()
