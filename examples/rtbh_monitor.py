#!/usr/bin/env python3
"""Remotely-Triggered Black-Holing study (§4.3, Figure 4).

Couples control-plane and data-plane measurements:

1. a community-filtered BGPStream detects announcements tagged with
   black-holing communities (the RTBH start) and their withdrawal or
   re-announcement without the community (the RTBH end);
2. on each detection, traceroutes are launched from ~50-100 Atlas-style
   probes towards the black-holed destination, and repeated after the
   black-holing is withdrawn;
3. the output is the Figure 4 pair of metrics: fraction of traceroutes
   reaching the destination, and fraction reaching the origin AS, during
   versus after RTBH.

Run:  python examples/rtbh_monitor.py
"""

from __future__ import annotations

import tempfile

from repro.atlas import RTBHExperiment
from repro.atlas.rtbh import detect_rtbh_requests
from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.broker import Broker
from repro.collectors import Archive, ScenarioConfig, build_scenario
from repro.collectors.events import RTBHEvent
from repro.collectors.topology import ASRole, TopologyConfig, generate_topology
from repro.core import BGPStream, BrokerDataInterface
from repro.utils.intervals import TimeInterval


def main() -> None:
    config = ScenarioConfig(
        duration=4 * 3600,
        topology=TopologyConfig(num_tier1=4, num_transit=14, num_stub=50, seed=31),
        vps_per_collector=5,
        full_feed_fraction=1.0,
        seed=32,
    )
    topology = generate_topology(config.topology)
    start = config.start

    # Pick a few customers whose providers support black-holing and script
    # DoS-mitigation episodes of various durations (most RTBH requests in
    # the paper last well under a day, 20% under 40 minutes).
    events = []
    durations = [1800, 2400, 3600]
    customers = [
        asn
        for asn in topology.asns()
        if topology.node(asn).role == ASRole.STUB
        and any(
            topology.node(p).blackhole_community_value is not None
            for p in topology.providers(asn)
        )
    ][: len(durations)]
    for index, (customer, duration) in enumerate(zip(customers, durations)):
        provider = next(
            p
            for p in topology.providers(customer)
            if topology.node(p).blackhole_community_value is not None
        )
        target = Prefix.from_address(str(topology.node(customer).prefixes[0].address), 32)
        community = Community(provider if provider <= 0xFFFF else 65535, 666)
        events.append(
            RTBHEvent(
                interval=TimeInterval(
                    start + 1800 * (index + 1), start + 1800 * (index + 1) + duration
                ),
                customer_asn=customer,
                blackhole_prefix=target,
                provider_asns=(provider,),
                communities=(community,),
                propagating_providers=(provider,),
            )
        )
    scenario = build_scenario(config, events=events, topology=topology)
    archive = Archive(tempfile.mkdtemp(prefix="bgpstream-rtbh-"))
    scenario.generate(archive)

    # Control plane: a community-filtered stream detects the RTBH episodes.
    watched = sorted({c for e in events for c in e.communities})
    stream = BGPStream(data_interface=BrokerDataInterface(Broker(archives=[archive])))
    stream.add_interval_filter(config.start, config.end)
    stream.add_filter("record-type", "updates")
    # A second, unfiltered stream watches for the withdrawals that end each episode.
    withdrawal_stream = BGPStream(
        data_interface=BrokerDataInterface(Broker(archives=[archive]))
    )
    withdrawal_stream.add_interval_filter(config.start, config.end)
    withdrawal_stream.add_filter("record-type", "updates")

    requests = detect_rtbh_requests(stream, watched, withdrawal_stream=withdrawal_stream)
    print(f"detected {len(requests)} RTBH episodes on the control plane")
    for request in requests:
        duration = "ongoing" if request.duration is None else f"{request.duration // 60} min"
        print(f"  {request.prefix} from AS{request.origin_asn}, duration {duration}")

    # Data plane: traceroutes during vs after each black-holing episode.
    experiment = RTBHExperiment(topology, seed=33)
    events_by_prefix = {e.blackhole_prefix: e for e in events}
    measurements = experiment.run(requests, events_by_prefix)

    print(
        "\n  prefix               probes  dest during  dest after  "
        "originAS during  originAS after"
    )
    for m in measurements:
        print(
            f"  {str(m.request.prefix):20s} {m.probes_used:6d}"
            f"  {m.during_destination_fraction:11.2f}  {m.after_destination_fraction:10.2f}"
            f"  {m.during_origin_fraction:15.2f}  {m.after_origin_fraction:14.2f}"
        )
    print("\n(the paper's Figure 4: reachability collapses during RTBH and recovers after)")


if __name__ == "__main__":
    main()
