#!/usr/bin/env python3
"""Two clients of the streaming gateway: SSE and WebSocket (ISSUE 7).

The gateway decodes one live BMP feed exactly once and fans it out to any
number of filtered subscribers.  This example starts an in-process gateway
over a synthetic feed (two peers announcing different address space), then
connects two stdlib-only clients:

* an **SSE** subscriber filtered to one /16 (a dashboard tailing one
  customer's space), reading ``text/event-stream`` windows;
* a **WebSocket** subscriber that starts with a peer-ASN filter and then
  *multiplexes its subscription live* — adding a prefix filter and
  removing the ASN filter mid-connection, acknowledged by the server.

No third-party packages: the WebSocket side uses the same RFC 6455 codec
the gateway itself ships (`repro.gateway.protocol`).

Run:  python examples/gateway_client.py
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bmp import BMPFeedProducer, BMPMessage, BMPPeerHeader
from repro.core.interfaces import LiveDataInterface
from repro.core.stream import BGPStream
from repro.gateway import GatewayServer, StreamHub
from repro.gateway.protocol import OP_TEXT, WSFrameParser, encode_ws_frame
from repro.kafka.broker import MessageBroker


def build_feed() -> MessageBroker:
    """Two peers, 40 updates: 10.1/16 from AS 65001, 10.2/16 from AS 65002."""
    broker = MessageBroker()
    producer = BMPFeedProducer(broker, router="edge1.example")
    for i in range(20):
        for peer_asn, net in ((65001, "10.1"), (65002, "10.2")):
            peer = BMPPeerHeader(
                address=f"192.0.2.{peer_asn % 100}",
                asn=peer_asn,
                timestamp_sec=1_000_000 + i,
            )
            update = BGPUpdate(
                announced=[Prefix.from_string(f"{net}.{i}.0/24")],
                attributes=PathAttributes(
                    as_path=ASPath.from_asns([peer_asn, 3356, 15169]),
                    next_hop="192.0.2.1",
                ),
            )
            producer.publish(BMPMessage.route_monitoring(peer, update))
    return broker


async def sse_client(port: int) -> None:
    """Tail /stream/sse filtered to 10.1.0.0/16, window = 4 feed-seconds."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        b"GET /stream/sse?prefix=10.1.0.0/16&window=4 HTTP/1.1\r\n"
        b"Host: localhost\r\n\r\n"
    )
    await writer.drain()
    while True:
        line = await reader.readline()
        if not line:
            break
        if line.startswith(b"data: "):
            payload = json.loads(line[6:])
            if payload.get("type") == "end":
                break
            prefixes = [e["fields"]["prefix"] for e in payload["elems"]]
            print(
                f"[sse] window [{payload['window_start']}, "
                f"{payload['window_end']}): {len(prefixes)} elems "
                f"e.g. {prefixes[:3]}"
            )
    writer.close()


async def ws_client(port: int) -> None:
    """Subscribe via WebSocket, then retune the subscription live."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    key = base64.b64encode(os.urandom(16)).decode()
    writer.write(
        (
            "GET /stream/ws?peer-asn=65002&window=1000000 HTTP/1.1\r\n"
            "Host: localhost\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\nSec-WebSocket-Version: 13\r\n\r\n"
        ).encode()
    )
    await writer.drain()
    await reader.readuntil(b"\r\n\r\n")  # 101 Switching Protocols

    def send(message: dict) -> None:
        writer.write(
            encode_ws_frame(json.dumps(message).encode(), OP_TEXT, mask=True)
        )

    # Multiplex: drop the ASN filter, watch one /16 instead — live, no
    # reconnect, acknowledged by the server.
    send({"action": "add_filter", "name": "prefix", "value": "10.1.0.0/16"})
    send({"action": "remove_filter", "name": "peer-asn", "value": "65002"})
    await writer.drain()

    parser = WSFrameParser()
    while True:
        data = await reader.read(4096)
        if not data:
            break
        done = False
        for opcode, payload in parser.feed(data):
            if opcode != OP_TEXT:
                continue
            message = json.loads(payload)
            if message.get("type") == "ack":
                print(f"[ws ] ack: {message['action']} {message['name']}={message['value']}")
            elif message.get("type") == "window":
                print(f"[ws ] window with {len(message['elems'])} elems")
            elif message.get("type") == "end":
                done = True
        if done:
            break
    writer.close()


async def main() -> None:
    stream = BGPStream(
        live=LiveDataInterface(
            broker=build_feed(), max_empty_polls=20, poll_interval=0.01
        )
    )
    hub = StreamHub(stream)
    server = await GatewayServer(hub, port=0).start()
    print(f"gateway on 127.0.0.1:{server.port} — one decode loop, two clients")
    clients = asyncio.gather(sse_client(server.port), ws_client(server.port))
    await asyncio.sleep(0.05)  # let both subscribe before frames flow
    hub.start()
    await clients
    stats = hub.stats()
    print(
        f"decode happened once: {stats['frames_decoded']} frames decoded, "
        f"{stats['elems_delivered']} elem deliveries across "
        f"{server.connections_served} connections"
    )
    hub.stop()
    await server.close()


if __name__ == "__main__":
    asyncio.run(main())
