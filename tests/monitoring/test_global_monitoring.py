"""End-to-end tests of the Figure 7 architecture.

RT publishers (one per collector) → message broker → sync servers →
outage / hijack consumers, all driven by the shared scenario archive that
contains a prefix hijack and a country-wide outage.
"""

from __future__ import annotations

import pytest

from repro.collectors.events import OutageEvent, PrefixHijackEvent
from repro.kafka.broker import MessageBroker
from repro.kafka.sync import CompletenessSyncServer, METADATA_TOPIC
from repro.monitoring.geo import GeoDatabase
from repro.monitoring.hijacks import HijackConsumer
from repro.monitoring.outages import OutageConsumer
from repro.monitoring.publisher import diffs_topic, run_publishers


@pytest.fixture(scope="module")
def published(corsaro_archive, corsaro_scenario):
    """Run one RT publisher per collector over the scenario archive."""
    message_broker = MessageBroker()
    collectors = [c.name for c in corsaro_scenario.collectors]
    stats = run_publishers(
        message_broker,
        corsaro_archive,
        collectors,
        corsaro_scenario.start,
        corsaro_scenario.end,
        bin_size=300,
        publication_delays={collectors[0]: 30.0, collectors[1]: 240.0},
    )
    return message_broker, collectors, stats


class TestRTPublishers:
    def test_every_collector_published_every_bin(self, published, corsaro_scenario):
        _, collectors, stats = published
        expected_bins = corsaro_scenario.config.duration // 300
        for collector in collectors:
            assert stats[collector].bins_published == expected_bins
            assert stats[collector].snapshots >= 1

    def test_diff_volume_lower_than_elem_volume(self, published):
        _, _, stats = published
        total_elems = sum(s.elems_processed for s in stats.values())
        total_diffs = sum(s.diff_cells for s in stats.values())
        assert total_elems > 0
        # Over the whole run diffs include the initial table bootstrap, so
        # compare against elems + bootstrap size rather than requiring a
        # strict reduction here (the Figure 9 benchmark does the precise
        # post-bootstrap comparison).
        assert total_diffs < total_elems * 10

    def test_data_and_metadata_topics_populated(self, published):
        message_broker, collectors, _ = published
        for collector in collectors:
            assert message_broker.topic(diffs_topic(collector)).size() > 0
        assert message_broker.topic(METADATA_TOPIC).size() > 0


class TestSyncIntegration:
    def test_completeness_sync_marks_bins_ready_in_order(self, published, corsaro_scenario):
        message_broker, collectors, _ = published
        sync = CompletenessSyncServer(
            message_broker, "ioda", expected_collectors=collectors, timeout=30 * 60
        )
        ready = sync.step(now=corsaro_scenario.end + 10_000)
        assert ready
        starts = [r.interval_start for r in ready]
        assert starts == sorted(starts)
        assert all(r.complete for r in ready)
        expected_bins = corsaro_scenario.config.duration // 300
        assert len(ready) == expected_bins


class TestOutageConsumer:
    @pytest.fixture(scope="class")
    def consumer(self, published, corsaro_scenario):
        message_broker, collectors, _ = published
        geo = GeoDatabase.from_topology(corsaro_scenario.topology)
        consumer = OutageConsumer(message_broker, collectors, geo)
        consumer.poll()
        return consumer

    def test_all_bins_processed(self, consumer, corsaro_scenario):
        assert consumer.bins_processed == corsaro_scenario.config.duration // 300

    def test_country_series_drops_during_outage(self, consumer, corsaro_scenario):
        outage = next(
            e for e in corsaro_scenario.timeline.events if isinstance(e, OutageEvent)
        )
        series = dict(consumer.country_series(outage.country))
        assert series
        before = [v for ts, v in series.items() if ts < outage.interval.start - 300]
        during = [
            v
            for ts, v in series.items()
            if outage.interval.start + 300 <= ts < outage.interval.end - 300
        ]
        after = [v for ts, v in series.items() if ts >= outage.interval.end + 300]
        assert before and during and after
        assert min(during) < 0.7 * max(before)
        assert max(after) >= 0.9 * max(before)

    def test_outage_alert_matches_scenario(self, consumer, corsaro_scenario):
        outage = next(
            e for e in corsaro_scenario.timeline.events if isinstance(e, OutageEvent)
        )
        alerts = consumer.detect_outages(scope="country")
        matching = [a for a in alerts if a.key == outage.country]
        assert matching
        alert = matching[0]
        # The alert is raised within a couple of bins of the injected outage.
        assert abs(alert.start - outage.interval.start) <= 600

    def test_per_as_series_also_drop(self, consumer, corsaro_scenario):
        outage = next(
            e for e in corsaro_scenario.timeline.events if isinstance(e, OutageEvent)
        )
        affected_asn = outage.asns[0]
        series = dict(consumer.asn_series(affected_asn))
        assert series
        during = [
            v
            for ts, v in series.items()
            if outage.interval.start + 300 <= ts < outage.interval.end - 300
        ]
        before = [v for ts, v in series.items() if ts < outage.interval.start - 300]
        assert before and max(before) > 0
        assert not during or min(during) < max(before)

    def test_unaffected_country_stays_stable(self, consumer, corsaro_scenario):
        outage = next(
            e for e in corsaro_scenario.timeline.events if isinstance(e, OutageEvent)
        )
        topology = corsaro_scenario.topology
        other = next(c for c in topology.countries() if c != outage.country)
        alerts = [a for a in consumer.detect_outages("country") if a.key == other]
        assert alerts == []


class TestHijackConsumer:
    def test_hijack_alert_raised_for_victim_prefix(self, published, corsaro_scenario):
        message_broker, collectors, _ = published
        hijack = next(
            e for e in corsaro_scenario.timeline.events if isinstance(e, PrefixHijackEvent)
        )
        consumer = HijackConsumer(message_broker, collectors)
        alerts = consumer.poll()
        assert alerts
        hijacked = [a for a in alerts if a.prefix in hijack.prefixes]
        assert hijacked
        assert any(a.involves(hijack.hijacker_asn) for a in hijacked)
        assert all(len(a.origins) >= 2 for a in hijacked)
        # Detection happens within the hijack window (near-realtime goal).
        assert all(
            hijack.interval.start <= a.detected_at <= hijack.interval.end + 300
            for a in hijacked
        )

    def test_whitelisted_moas_not_alerted(self, published, corsaro_scenario):
        message_broker, collectors, _ = published
        hijack = next(
            e for e in corsaro_scenario.timeline.events if isinstance(e, PrefixHijackEvent)
        )
        legitimate = frozenset({hijack.hijacker_asn, hijack.victim_asn})
        consumer = HijackConsumer(
            message_broker, collectors, group="hijack-whitelist", whitelist=[legitimate]
        )
        alerts = consumer.poll()
        assert not [a for a in alerts if a.origins == legitimate]
