"""Sub-prefix hijack detection (§6.2 "Hijacks" + the patricia-trie scenario).

A sub-prefix hijack never produces a MOAS event: the hijacker announces a
*more specific* of the victim's prefix, so the two origin sets live on two
different prefixes.  Detecting it requires relating a new announcement to
the covering prefixes already observed — the covering walk of the patricia
trie.  These tests drive the :class:`HijackConsumer` both synthetically
(hand-built RT bins) and end-to-end from a generated scenario archive in
which the hijack event announces a more specific of the victim's prefix.
"""

from __future__ import annotations

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.prefix import Prefix
from repro.collectors.archive import Archive
from repro.collectors.events import PrefixHijackEvent
from repro.collectors.scenario import ScenarioConfig, build_scenario
from repro.collectors.topology import ASRole, TopologyConfig, generate_topology
from repro.corsaro.plugins.routing_tables import DiffCell, RTBinOutput
from repro.kafka.broker import MessageBroker
from repro.kafka.client import Producer
from repro.monitoring.hijacks import HijackConsumer
from repro.monitoring.publisher import diffs_topic, run_publishers
from repro.utils.intervals import TimeInterval

VP1 = ("rrc0", 64496, "10.0.0.1")
VP2 = ("rrc0", 64497, "10.0.0.2")
SUPER = Prefix.from_string("203.0.113.0/24")
SUB = Prefix.from_string("203.0.113.0/25")
VICTIM_ASN = 64500
HIJACKER_ASN = 64666


def _announce(vp, prefix, path):
    return DiffCell(
        vp=vp,
        prefix=prefix,
        announced=True,
        as_path=ASPath.from_asns(list(path)),
        next_hop="10.0.0.1",
    )


def _withdraw(vp, prefix):
    return DiffCell(vp=vp, prefix=prefix, announced=False, as_path=None, next_hop=None)


def _bin(interval_start, diffs):
    return RTBinOutput(
        interval_start=interval_start,
        elems_processed=len(diffs),
        diffs=list(diffs),
        consistent_vps=(VP1, VP2),
        table_sizes={},
    )


class TestSubPrefixDetectionSynthetic:
    def _publish(self, broker, *bins):
        producer = Producer(broker, default_topic=diffs_topic("rrc0"))
        for bin_output in bins:
            producer.send(bin_output)

    def _baseline(self, t=0):
        """Both VPs carry the victim's covering prefix."""
        return _bin(
            t,
            [
                _announce(VP1, SUPER, (64496, VICTIM_ASN)),
                _announce(VP2, SUPER, (64497, VICTIM_ASN)),
            ],
        )

    def test_foreign_more_specific_raises_subprefix_alert(self):
        broker = MessageBroker()
        self._publish(
            broker,
            self._baseline(0),
            _bin(300, [_announce(VP1, SUB, (64496, HIJACKER_ASN))]),
        )
        consumer = HijackConsumer(broker, ["rrc0"])
        alerts = consumer.poll()
        assert [a for a in alerts if a.hijack_type == "sub-prefix"] == alerts
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.prefix == SUB
        assert alert.super_prefix == SUPER
        assert alert.new_origins == frozenset({HIJACKER_ASN})
        assert alert.expected_origins == frozenset({VICTIM_ASN})
        assert alert.detected_at == 300
        assert alert.involves(HIJACKER_ASN) and alert.involves(VICTIM_ASN)

    def test_same_origin_more_specific_is_not_a_hijack(self):
        """Traffic engineering: the owner's own more-specific must not alert."""
        broker = MessageBroker()
        self._publish(
            broker,
            self._baseline(0),
            _bin(300, [_announce(VP1, SUB, (64496, VICTIM_ASN))]),
        )
        assert HijackConsumer(broker, ["rrc0"]).poll() == []

    def test_alert_fires_once_until_episode_ends(self):
        broker = MessageBroker()
        consumer = HijackConsumer(broker, ["rrc0"])
        self._publish(
            broker,
            self._baseline(0),
            _bin(300, [_announce(VP1, SUB, (64496, HIJACKER_ASN))]),
            _bin(600, [_announce(VP2, SUB, (64497, HIJACKER_ASN))]),
        )
        assert len(consumer.poll()) == 1
        # Withdrawing the sub-prefix everywhere ends the episode...
        self._publish(broker, _bin(900, [_withdraw(VP1, SUB), _withdraw(VP2, SUB)]))
        assert consumer.poll() == []
        # ...so a re-announcement alerts again.
        self._publish(broker, _bin(1200, [_announce(VP1, SUB, (64496, HIJACKER_ASN))]))
        again = consumer.poll()
        assert len(again) == 1
        assert again[0].detected_at == 1200
        assert len(consumer.subprefix_alerts()) == 2

    def test_whitelisted_origin_pair_not_alerted(self):
        broker = MessageBroker()
        self._publish(
            broker,
            self._baseline(0),
            _bin(300, [_announce(VP1, SUB, (64496, HIJACKER_ASN))]),
        )
        consumer = HijackConsumer(
            broker,
            ["rrc0"],
            whitelist=[frozenset({VICTIM_ASN, HIJACKER_ASN})],
        )
        assert consumer.poll() == []

    def test_min_vps_suppresses_single_vp_noise(self):
        broker = MessageBroker()
        self._publish(
            broker,
            self._baseline(0),
            _bin(300, [_announce(VP1, SUB, (64496, HIJACKER_ASN))]),
        )
        consumer = HijackConsumer(broker, ["rrc0"], min_vps=2)
        assert consumer.poll() == []
        # A second VP seeing the hijack crosses the threshold.
        self._publish(broker, _bin(600, [_announce(VP2, SUB, (64497, HIJACKER_ASN))]))
        alerts = consumer.poll()
        assert len(alerts) == 1
        assert alerts[0].hijack_type == "sub-prefix"

    def test_detection_can_be_disabled(self):
        broker = MessageBroker()
        self._publish(
            broker,
            self._baseline(0),
            _bin(300, [_announce(VP1, SUB, (64496, HIJACKER_ASN))]),
        )
        consumer = HijackConsumer(broker, ["rrc0"], detect_subprefix=False)
        assert consumer.poll() == []

    def test_moas_detection_still_works_alongside(self):
        broker = MessageBroker()
        self._publish(
            broker,
            self._baseline(0),
            _bin(300, [_announce(VP1, SUPER, (64496, HIJACKER_ASN))]),
        )
        consumer = HijackConsumer(broker, ["rrc0"])
        alerts = consumer.poll()
        assert [a.hijack_type for a in alerts] == ["moas"]
        assert alerts[0].origins == frozenset({VICTIM_ASN, HIJACKER_ASN})


@pytest.fixture(scope="module")
def subprefix_scenario():
    """A scenario whose hijack event announces a more specific of the victim."""
    config = ScenarioConfig(
        duration=2 * 3600,
        topology=TopologyConfig(num_tier1=3, num_transit=8, num_stub=20, seed=71),
        vps_per_collector=3,
        full_feed_fraction=1.0,
        churn_updates_per_vp_per_hour=20,
        seed=72,
    )
    topology = generate_topology(config.topology)
    start = config.start
    victim = next(a for a in topology.asns() if topology.node(a).role == ASRole.STUB)
    hijacker = next(
        a
        for a in topology.asns()
        if topology.node(a).role == ASRole.TRANSIT and a not in topology.providers(victim)
    )
    victim_prefix = topology.node(victim).prefixes[0]
    sub_prefix = Prefix.from_address(str(victim_prefix.address), victim_prefix.length + 1)
    event = PrefixHijackEvent(
        interval=TimeInterval(start + 1800, start + 1800 + 1800),
        hijacker_asn=hijacker,
        victim_asn=victim,
        prefixes=(sub_prefix,),
    )
    scenario = build_scenario(config, events=[event], topology=topology)
    return scenario, event, victim_prefix, sub_prefix


@pytest.fixture(scope="module")
def subprefix_archive(tmp_path_factory, subprefix_scenario):
    scenario, _, _, _ = subprefix_scenario
    archive = Archive(str(tmp_path_factory.mktemp("subprefix-archive")))
    scenario.generate(archive)
    return archive


class TestSubPrefixDetectionEndToEnd:
    def test_scenario_subprefix_hijack_alerts(self, subprefix_scenario, subprefix_archive):
        scenario, event, victim_prefix, sub_prefix = subprefix_scenario
        message_broker = MessageBroker()
        collectors = [c.name for c in scenario.collectors]
        run_publishers(
            message_broker,
            subprefix_archive,
            collectors,
            scenario.start,
            scenario.end,
            bin_size=300,
        )
        consumer = HijackConsumer(message_broker, collectors)
        consumer.poll()
        alerts = consumer.subprefix_alerts()
        assert alerts, "the sub-prefix announcement must raise an alert"
        matching = [a for a in alerts if a.prefix == sub_prefix]
        assert matching
        alert = matching[0]
        assert alert.super_prefix == victim_prefix
        assert event.hijacker_asn in alert.new_origins
        assert event.victim_asn in alert.expected_origins
        # Near-realtime: detection falls inside the hijack window.
        assert event.interval.start <= alert.detected_at <= event.interval.end + 300
        # The same event must NOT look like a MOAS: origins differ per prefix.
        moas = [a for a in consumer.alerts if a.hijack_type == "moas"]
        assert not [a for a in moas if a.prefix == sub_prefix]
