"""Tests for the per-collector RT publisher (the left half of Figure 7)."""

from __future__ import annotations

import pytest

from repro.kafka.broker import MessageBroker
from repro.kafka.client import Consumer
from repro.kafka.sync import METADATA_TOPIC, BinMetadata
from repro.monitoring.publisher import RTPublisher, diffs_topic


class TestRTPublisher:
    @pytest.fixture(scope="class")
    def published(self, corsaro_archive, corsaro_scenario):
        message_broker = MessageBroker()
        collector = corsaro_scenario.collectors[0].name
        publisher = RTPublisher(
            message_broker, collector, bin_size=900, publication_delay=45.0
        )
        stats = publisher.run(corsaro_archive, corsaro_scenario.start, corsaro_scenario.end)
        return message_broker, collector, stats

    def test_one_data_message_per_bin(self, published, corsaro_scenario):
        message_broker, collector, stats = published
        expected_bins = corsaro_scenario.config.duration // 900
        assert stats.bins_published == expected_bins
        assert message_broker.topic(diffs_topic(collector)).size() == expected_bins

    def test_bins_carry_increasing_interval_starts(self, published):
        message_broker, collector, _stats = published
        consumer = Consumer(message_broker, group="check", topics=[diffs_topic(collector)])
        starts = [m.value.interval_start for m in consumer.poll()]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)

    def test_metadata_announced_with_publication_delay(self, published):
        message_broker, collector, stats = published
        consumer = Consumer(message_broker, group="meta-check", topics=[METADATA_TOPIC])
        metadata = [m.value for m in consumer.poll()]
        assert len(metadata) == stats.bins_published
        assert all(isinstance(entry, BinMetadata) for entry in metadata)
        assert all(entry.collector == collector for entry in metadata)
        # published_at = bin end + the configured publication delay.
        first = min(metadata, key=lambda entry: entry.interval_start)
        assert first.published_at == pytest.approx(first.interval_start + 900 + 45.0)

    def test_stats_aggregate_diffs_and_snapshots(self, published):
        _broker, _collector, stats = published
        assert stats.diff_cells > 0
        assert stats.elems_processed > 0
        assert stats.snapshots >= 1

    def test_iter_bins_streams_outputs(self, corsaro_archive, corsaro_scenario):
        message_broker = MessageBroker()
        collector = corsaro_scenario.collectors[1].name
        publisher = RTPublisher(message_broker, collector, bin_size=1800)
        seen = 0
        for bin_output in publisher.iter_bins(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.start + 2 * 3600
        ):
            assert bin_output.interval_start % 1800 == 0
            seen += 1
            if seen == 2:
                break
        assert seen == 2
        # Even though iteration stopped early, everything seen was published.
        assert message_broker.topic(diffs_topic(collector)).size() >= 2
