"""Tests for the time-series store, change-point detection and geolocation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bgp.prefix import Prefix
from repro.collectors.topology import TopologyConfig, generate_topology
from repro.monitoring.geo import GeoDatabase
from repro.monitoring.timeseries import TimeSeries, TimeSeriesStore


class TestTimeSeries:
    def test_append_keeps_order(self):
        series = TimeSeries("s")
        series.append(0, 1.0)
        series.append(10, 2.0)
        assert series.values() == [1.0, 2.0]
        assert series.latest() == (10, 2.0)
        with pytest.raises(ValueError):
            series.append(5, 3.0)

    def test_store_creates_series_on_demand(self):
        store = TimeSeriesStore()
        store.append("a", 0, 1.0)
        assert "a" in store
        assert store.names() == ["a"]
        assert len(store.series("a")) == 1


class TestChangePointDetection:
    def _store_with(self, values, threshold=0.3, window=6):
        store = TimeSeriesStore(window=window, threshold=threshold)
        for index, value in enumerate(values):
            store.append("s", index * 300, value)
        return store

    def test_flat_series_has_no_change_points(self):
        store = self._store_with([100] * 20)
        assert store.change_points("s") == []

    def test_sharp_drop_detected_as_drop(self):
        values = [100] * 10 + [10] * 3 + [100] * 5
        store = self._store_with(values)
        drops = store.drops("s")
        assert drops
        assert drops[0].timestamp == 10 * 300
        assert drops[0].is_drop
        assert drops[0].relative_change < -0.5

    def test_recovery_detected_as_spike(self):
        values = [10] * 10 + [100] * 3
        store = self._store_with(values)
        spikes = store.spikes("s")
        assert spikes
        assert not spikes[0].is_drop

    def test_small_noise_below_threshold_ignored(self):
        values = [100, 101, 99, 102, 98, 100, 103, 97, 100]
        store = self._store_with(values, threshold=0.3)
        assert store.change_points("s") == []

    @given(st.lists(st.integers(90, 110), min_size=5, max_size=40))
    def test_bounded_noise_never_triggers(self, values):
        store = self._store_with([float(v) for v in values], threshold=0.5)
        assert store.change_points("s") == []


class TestGeoDatabase:
    def test_from_topology_covers_all_prefixes(self):
        topology = generate_topology(
            TopologyConfig(num_tier1=3, num_transit=6, num_stub=15, seed=9)
        )
        geo = GeoDatabase.from_topology(topology)
        assert len(geo) == len(topology.all_prefixes())
        for asn in topology.asns():
            node = topology.node(asn)
            for prefix in node.all_prefixes:
                assert geo.country_of(prefix) == node.country

    def test_longest_prefix_match_for_more_specifics(self):
        geo = GeoDatabase(
            {Prefix.from_string("10.0.0.0/8"): "IQ", Prefix.from_string("10.1.0.0/16"): "DE"}
        )
        assert geo.country_of(Prefix.from_string("10.1.2.0/24")) == "DE"
        assert geo.country_of(Prefix.from_string("10.2.0.0/24")) == "IQ"
        assert geo.country_of(Prefix.from_string("192.0.2.0/24")) is None

    def test_prefixes_of_country(self):
        geo = GeoDatabase(
            {Prefix.from_string("10.0.0.0/8"): "IQ", Prefix.from_string("11.0.0.0/8"): "DE"}
        )
        assert geo.prefixes_of("IQ") == [Prefix.from_string("10.0.0.0/8")]
        assert geo.countries() == ["DE", "IQ"]
