"""Tests for path attributes and the UPDATE message codec."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import Origin, PathAttributes
from repro.bgp.community import Community, CommunitySet
from repro.bgp.message import (
    BGPDecodeError,
    BGPUpdate,
    MessageType,
    decode_update,
    encode_update,
)
from repro.bgp.prefix import Prefix


def _prefix_strategy():
    return st.builds(
        lambda addr, length: Prefix.from_address(
            f"{(addr >> 24) & 0xFF}.{(addr >> 16) & 0xFF}.{(addr >> 8) & 0xFF}.{addr & 0xFF}",
            length,
        ),
        st.integers(0, 2**32 - 1),
        st.integers(8, 32),
    )


class TestPathAttributesCodec:
    def test_round_trip_full(self, sample_attributes):
        sample_attributes.med = 50
        sample_attributes.local_pref = 200
        sample_attributes.atomic_aggregate = True
        sample_attributes.aggregator = (64500, "10.0.0.9")
        decoded = PathAttributes.decode(sample_attributes.encode())
        assert decoded.as_path == sample_attributes.as_path
        assert decoded.next_hop == "10.0.0.1"
        assert decoded.med == 50
        assert decoded.local_pref == 200
        assert decoded.atomic_aggregate is True
        assert decoded.aggregator == (64500, "10.0.0.9")
        assert decoded.communities == sample_attributes.communities

    def test_round_trip_ipv6_mp_reach(self):
        attrs = PathAttributes(
            as_path=ASPath.from_asns([1, 2]),
            mp_next_hop="2001:db8::1",
            mp_reach_nlri=[Prefix.from_string("2001:db8:1::/48")],
        )
        decoded = PathAttributes.decode(attrs.encode())
        assert decoded.mp_next_hop == "2001:db8::1"
        assert decoded.mp_reach_nlri == attrs.mp_reach_nlri

    def test_round_trip_ipv6_mp_unreach(self):
        attrs = PathAttributes(mp_unreach_nlri=[Prefix.from_string("2001:db8::/32")])
        decoded = PathAttributes.decode(attrs.encode())
        assert decoded.mp_unreach_nlri == attrs.mp_unreach_nlri

    def test_effective_next_hop(self):
        attrs = PathAttributes(next_hop="10.0.0.1", mp_next_hop="2001:db8::1")
        assert attrs.effective_next_hop(4) == "10.0.0.1"
        assert attrs.effective_next_hop(6) == "2001:db8::1"

    def test_decode_truncated_raises(self, sample_attributes):
        encoded = sample_attributes.encode()
        with pytest.raises(ValueError):
            PathAttributes.decode(encoded[:-3])

    def test_default_origin(self):
        assert PathAttributes().origin == Origin.IGP


class TestUpdateCodec:
    def test_round_trip_announcement(self, sample_attributes, sample_prefix):
        update = BGPUpdate(announced=[sample_prefix], attributes=sample_attributes)
        decoded = decode_update(encode_update(update))
        assert decoded.announced == [sample_prefix]
        assert decoded.attributes.as_path == sample_attributes.as_path
        assert not decoded.withdrawn

    def test_round_trip_withdrawal_only(self, sample_prefix):
        update = BGPUpdate(withdrawn=[sample_prefix])
        decoded = decode_update(update.encode())
        assert decoded.withdrawn == [sample_prefix]
        assert not decoded.announced

    def test_round_trip_mixed_families(self, sample_attributes):
        sample_attributes.mp_next_hop = "2001:db8::1"
        sample_attributes.mp_reach_nlri = [Prefix.from_string("2001:db8:2::/48")]
        update = BGPUpdate(
            announced=[Prefix.from_string("10.0.0.0/8")], attributes=sample_attributes
        )
        decoded = decode_update(update.encode())
        assert len(decoded.all_announced) == 2
        assert {p.version for p in decoded.all_announced} == {4, 6}

    def test_header_fields(self, sample_prefix):
        wire = BGPUpdate(withdrawn=[sample_prefix]).encode()
        assert wire[:16] == b"\xff" * 16
        assert wire[18] == MessageType.UPDATE

    def test_decode_rejects_bad_marker(self, sample_prefix):
        wire = bytearray(BGPUpdate(withdrawn=[sample_prefix]).encode())
        wire[0] = 0
        with pytest.raises(BGPDecodeError):
            decode_update(bytes(wire))

    def test_decode_rejects_length_mismatch(self, sample_prefix):
        wire = BGPUpdate(withdrawn=[sample_prefix]).encode()
        with pytest.raises(BGPDecodeError):
            decode_update(wire + b"\x00")

    def test_decode_rejects_short_message(self):
        with pytest.raises(BGPDecodeError):
            decode_update(b"\xff" * 10)

    def test_decode_rejects_truncated_body(self, sample_attributes, sample_prefix):
        update = BGPUpdate(announced=[sample_prefix], attributes=sample_attributes)
        wire = bytearray(update.encode())
        # Corrupt the attribute length so the attributes overrun the message.
        wire[23] = 0xFF
        wire[24] = 0xFF
        with pytest.raises(BGPDecodeError):
            decode_update(bytes(wire))

    @given(st.lists(_prefix_strategy(), max_size=8), st.lists(_prefix_strategy(), max_size=8))
    def test_round_trip_random_prefix_lists(self, announced, withdrawn):
        attrs = PathAttributes(
            as_path=ASPath.from_asns([64500, 1299]),
            next_hop="10.1.1.1",
            communities=CommunitySet([Community(64500, 1)]),
        )
        update = BGPUpdate(
            withdrawn=withdrawn,
            announced=announced,
            attributes=attrs if announced else PathAttributes(),
        )
        decoded = decode_update(update.encode())
        assert decoded.announced == announced
        assert decoded.withdrawn == withdrawn
