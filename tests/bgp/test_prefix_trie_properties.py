"""Property-based tests: the patricia trie vs a brute-force oracle.

Every query the trie answers (longest-prefix match, covering set, covered
set, overlap) is recomputed with plain :mod:`ipaddress` arithmetic over the
same prefix set; the two must agree on arbitrary mixed IPv4/IPv6 inputs,
including after random removals.
"""

from __future__ import annotations

import ipaddress
from typing import List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie


def _prefix(version: int, bits: int, length: int) -> Prefix:
    max_length = 32 if version == 4 else 128
    shift = max_length - length
    masked = (bits >> shift) << shift if length else 0
    return Prefix(ipaddress.ip_network((masked, length)))


def _prefixes(version: int) -> st.SearchStrategy[Prefix]:
    max_length = 32 if version == 4 else 128
    return st.builds(
        _prefix,
        st.just(version),
        st.integers(min_value=0, max_value=2**max_length - 1),
        st.integers(min_value=0, max_value=max_length),
    )


any_prefix = st.one_of(_prefixes(4), _prefixes(6))

#: A prefix universe plus query prefixes drawn from the same pool, so
#: queries frequently hit covering/covered relationships instead of always
#: missing.
prefix_sets = st.lists(any_prefix, min_size=1, max_size=40, unique=True)


class Oracle:
    """Brute-force reference implementation over a list of prefixes."""

    def __init__(self, prefixes: List[Prefix]):
        self.prefixes = prefixes

    def covering(self, query: Prefix) -> List[Prefix]:
        return sorted(p for p in self.prefixes if p.contains(query))

    def covered(self, query: Prefix) -> List[Prefix]:
        return sorted(p for p in self.prefixes if query.contains(p))

    def overlaps(self, query: Prefix) -> bool:
        return any(p.overlaps(query) for p in self.prefixes)

    def longest_match(self, query: Prefix) -> Optional[Prefix]:
        return max(self.covering(query), key=lambda p: p.length, default=None)


def _build(prefixes: List[Prefix]) -> PrefixTrie:
    return PrefixTrie((p, str(p)) for p in prefixes)


@given(prefix_sets, any_prefix)
@settings(max_examples=200, deadline=None)
def test_covering_and_covered_match_oracle(prefixes, query):
    trie, oracle = _build(prefixes), Oracle(prefixes)
    assert sorted(p for p, _ in trie.covering(query)) == oracle.covering(query)
    assert sorted(p for p, _ in trie.covered(query)) == oracle.covered(query)


@given(prefix_sets, any_prefix)
@settings(max_examples=200, deadline=None)
def test_longest_match_and_overlap_match_oracle(prefixes, query):
    trie, oracle = _build(prefixes), Oracle(prefixes)
    match = trie.longest_match(query)
    assert (match[0] if match else None) == oracle.longest_match(query)
    assert trie.overlaps(query) == oracle.overlaps(query)


@given(prefix_sets, st.data())
@settings(max_examples=200, deadline=None)
def test_queries_against_set_member(prefixes, data):
    """Querying with a stored prefix always finds itself in both walks."""
    trie = _build(prefixes)
    query = data.draw(st.sampled_from(prefixes))
    assert query in trie
    assert [p for p, _ in trie.covering(query)][0] == query
    assert next(iter(trie.covered(query)))[0] in prefixes
    assert trie.overlaps(query)
    assert trie.longest_match(query)[0] == query


@given(prefix_sets, st.data())
@settings(max_examples=200, deadline=None)
def test_removal_preserves_oracle_agreement(prefixes, data):
    """After removing a random subset the survivors still agree with the oracle."""
    trie = _build(prefixes)
    to_remove = data.draw(
        st.lists(st.sampled_from(prefixes), unique=True, max_size=len(prefixes))
    )
    for prefix in to_remove:
        trie.remove(prefix)
    survivors = [p for p in prefixes if p not in to_remove]
    oracle = Oracle(survivors)
    assert sorted(trie) == sorted(survivors)
    query = data.draw(any_prefix)
    assert sorted(p for p, _ in trie.covering(query)) == oracle.covering(query)
    assert sorted(p for p, _ in trie.covered(query)) == oracle.covered(query)
    assert trie.overlaps(query) == oracle.overlaps(query)


@given(st.lists(st.tuples(any_prefix, st.integers()), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_mapping_semantics_match_dict(items: List[Tuple[Prefix, int]]):
    """Insert/overwrite/len/iteration behave exactly like a dict."""
    trie: PrefixTrie = PrefixTrie()
    reference = {}
    for prefix, value in items:
        trie.insert(prefix, value)
        reference[prefix] = value
    assert len(trie) == len(reference)
    assert dict(trie.items()) == reference
    for prefix, value in reference.items():
        assert trie[prefix] == value
