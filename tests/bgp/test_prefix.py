"""Tests for IP prefix handling and the NLRI wire codec."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bgp.prefix import Prefix


class TestPrefixBasics:
    def test_parse_ipv4(self):
        prefix = Prefix.from_string("192.0.2.0/24")
        assert prefix.version == 4
        assert prefix.length == 24
        assert str(prefix) == "192.0.2.0/24"

    def test_parse_ipv6(self):
        prefix = Prefix.from_string("2001:db8::/32")
        assert prefix.version == 6
        assert prefix.length == 32

    def test_host_bits_tolerated(self):
        prefix = Prefix.from_string("192.0.2.7/24")
        assert str(prefix) == "192.0.2.0/24"

    def test_from_address(self):
        assert Prefix.from_address("10.0.0.0", 8) == Prefix.from_string("10.0.0.0/8")

    def test_is_host(self):
        assert Prefix.from_string("192.0.2.1/32").is_host()
        assert not Prefix.from_string("192.0.2.0/24").is_host()
        assert Prefix.from_string("2001:db8::1/128").is_host()

    def test_ordering_is_total(self):
        prefixes = [
            Prefix.from_string("10.0.0.0/8"),
            Prefix.from_string("2001:db8::/32"),
            Prefix.from_string("9.0.0.0/8"),
        ]
        ordered = sorted(prefixes)
        assert [str(p) for p in ordered] == ["9.0.0.0/8", "10.0.0.0/8", "2001:db8::/32"]


class TestPrefixRelationships:
    def test_contains_more_specific(self):
        assert Prefix.from_string("192.0.0.0/8").contains(Prefix.from_string("192.0.2.0/24"))
        assert not Prefix.from_string("192.0.2.0/24").contains(Prefix.from_string("192.0.0.0/8"))

    def test_contains_self(self):
        prefix = Prefix.from_string("10.0.0.0/8")
        assert prefix.contains(prefix)

    def test_cross_family_never_contains(self):
        assert not Prefix.from_string("0.0.0.0/0").contains(Prefix.from_string("::/0"))

    def test_overlaps(self):
        assert Prefix.from_string("10.0.0.0/8").overlaps(Prefix.from_string("10.1.0.0/16"))
        assert not Prefix.from_string("10.0.0.0/8").overlaps(Prefix.from_string("11.0.0.0/8"))


class TestPrefixCodec:
    def test_round_trip_ipv4(self):
        prefix = Prefix.from_string("192.0.2.0/24")
        decoded, offset = Prefix.decode(prefix.encode(), 0, version=4)
        assert decoded == prefix
        assert offset == len(prefix.encode())

    def test_round_trip_ipv6(self):
        prefix = Prefix.from_string("2001:db8:1234::/48")
        decoded, _ = Prefix.decode(prefix.encode(), 0, version=6)
        assert decoded == prefix

    def test_default_route_encodes_to_single_byte(self):
        assert Prefix.from_string("0.0.0.0/0").encode() == b"\x00"

    def test_decode_rejects_truncated(self):
        with pytest.raises(ValueError):
            Prefix.decode(b"\x18\xc0", 0, version=4)  # /24 needs 3 address bytes

    def test_decode_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix.decode(bytes([40]) + b"\x00" * 5, 0, version=4)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 32))
    def test_round_trip_random_ipv4(self, address, length):
        import ipaddress

        prefix = Prefix.from_address(str(ipaddress.IPv4Address(address)), length)
        decoded, _ = Prefix.decode(prefix.encode(), 0, version=4)
        assert decoded == prefix

    @given(st.integers(0, 2**128 - 1), st.integers(0, 128))
    def test_round_trip_random_ipv6(self, address, length):
        import ipaddress

        prefix = Prefix.from_address(str(ipaddress.IPv6Address(address)), length)
        decoded, _ = Prefix.decode(prefix.encode(), 0, version=6)
        assert decoded == prefix
