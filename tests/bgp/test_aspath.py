"""Tests for AS paths: segments, hops, string and wire codecs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bgp.aspath import ASPath, ASPathSegment, SegmentType, path_inflation


class TestASPathConstruction:
    def test_from_asns(self):
        path = ASPath.from_asns([701, 3356, 15169])
        assert len(path.segments) == 1
        assert path.segments[0].segment_type == SegmentType.AS_SEQUENCE
        assert str(path) == "701 3356 15169"

    def test_empty_path(self):
        path = ASPath.from_asns([])
        assert not path
        assert len(path) == 0
        assert path.origin_asn is None
        assert path.peer_asn is None

    def test_from_string_with_set(self):
        path = ASPath.from_string("701 3356 {64512,64513}")
        assert len(path.segments) == 2
        assert path.segments[1].segment_type == SegmentType.AS_SET
        assert str(path) == "701 3356 {64512,64513}"

    def test_from_string_round_trip(self):
        text = "13030 2914 {4808,4837} 9808"
        assert str(ASPath.from_string(text)) == text

    def test_asn_range_validated(self):
        with pytest.raises(ValueError):
            ASPathSegment(SegmentType.AS_SEQUENCE, (2**32,))


class TestASPathSemantics:
    def test_length_counts_set_as_one(self):
        path = ASPath.from_string("701 3356 {64512,64513}")
        assert len(path) == 3

    def test_hops_collapse_prepending(self):
        path = ASPath.from_asns([701, 3356, 3356, 3356, 15169])
        assert path.hops == [701, 3356, 15169]

    def test_origin_and_peer(self):
        path = ASPath.from_asns([701, 3356, 15169])
        assert path.peer_asn == 701
        assert path.origin_asn == 15169

    def test_contains_asn(self):
        path = ASPath.from_string("701 {3356,1299} 15169")
        assert path.contains_asn(1299)
        assert not path.contains_asn(2914)

    def test_adjacencies(self):
        path = ASPath.from_asns([701, 3356, 3356, 15169])
        assert path.adjacencies() == [(701, 3356), (3356, 15169)]

    def test_prepend_merges_into_sequence(self):
        path = ASPath.from_asns([3356, 15169]).prepend(701, count=2)
        assert path.hops == [701, 3356, 15169]
        assert list(path.iter_asns()) == [701, 701, 3356, 15169]
        assert len(path.segments) == 1

    def test_prepend_rejects_zero_count(self):
        with pytest.raises(ValueError):
            ASPath.from_asns([1]).prepend(2, count=0)

    def test_path_inflation(self):
        observed = ASPath.from_asns([701, 3356, 2914, 15169])
        assert path_inflation(observed, shortest_hops=3) == 1
        assert path_inflation(observed, shortest_hops=4) == 0
        assert path_inflation(observed, shortest_hops=6) == 0  # clamped


class TestASPathCodec:
    def test_round_trip_simple(self):
        path = ASPath.from_asns([701, 3356, 15169])
        assert ASPath.decode(path.encode()) == path

    def test_round_trip_with_sets(self):
        path = ASPath.from_string("701 {64512,64513} 15169 {65000}")
        assert ASPath.decode(path.encode()) == path

    def test_decode_rejects_truncated_header(self):
        with pytest.raises(ValueError):
            ASPath.decode(b"\x02")

    def test_decode_rejects_truncated_body(self):
        path = ASPath.from_asns([701, 3356])
        with pytest.raises(ValueError):
            ASPath.decode(path.encode()[:-2])

    @given(st.lists(st.integers(1, 2**32 - 1), min_size=0, max_size=12))
    def test_round_trip_random_sequences(self, asns):
        path = ASPath.from_asns(asns)
        assert ASPath.decode(path.encode()) == path
        assert ASPath.from_string(str(path)) == path

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([SegmentType.AS_SEQUENCE, SegmentType.AS_SET]),
                st.lists(st.integers(1, 2**32 - 1), min_size=1, max_size=5),
            ),
            min_size=0,
            max_size=5,
        )
    )
    def test_round_trip_random_segments(self, raw):
        path = ASPath(tuple(ASPathSegment(t, tuple(a)) for t, a in raw))
        assert ASPath.decode(path.encode()) == path
