"""Tests for the communities attribute."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bgp.community import (
    BLACKHOLE,
    NO_EXPORT,
    Community,
    CommunitySet,
)


class TestCommunity:
    def test_parse_and_str(self):
        community = Community.from_string("3356:666")
        assert community.asn == 3356
        assert community.value == 666
        assert str(community) == "3356:666"

    def test_int_round_trip(self):
        community = Community(65535, 666)
        assert Community.from_int(community.to_int()) == community

    def test_range_validation(self):
        with pytest.raises(ValueError):
            Community(70000, 1)
        with pytest.raises(ValueError):
            Community(1, 70000)

    def test_well_known_values(self):
        assert Community(*BLACKHOLE) == Community(65535, 666)
        assert Community(*NO_EXPORT).value == 65281

    @given(st.integers(0, 2**32 - 1))
    def test_from_int_round_trip(self, raw):
        assert Community.from_int(raw).to_int() == raw


class TestCommunitySet:
    def test_membership_accepts_strings_and_tuples(self):
        cset = CommunitySet.from_strings(["3356:100", "65535:666"])
        assert "3356:100" in cset
        assert (65535, 666) in cset
        assert Community(3356, 100) in cset
        assert "3356:200" not in cset

    def test_str_is_sorted(self):
        cset = CommunitySet.from_pairs([(200, 1), (100, 2)])
        assert str(cset) == "100:2 200:1"

    def test_set_operations_are_persistent(self):
        base = CommunitySet.from_pairs([(1, 1)])
        extended = base.add(Community(2, 2))
        assert len(base) == 1
        assert len(extended) == 2
        assert extended.remove(Community(1, 1)) == CommunitySet.from_pairs([(2, 2)])

    def test_asn_identifiers(self):
        cset = CommunitySet.from_pairs([(3356, 1), (3356, 2), (2914, 9)])
        assert cset.asn_identifiers() == frozenset({3356, 2914})

    def test_matches_any(self):
        cset = CommunitySet.from_pairs([(65535, 666)])
        assert cset.matches_any([Community(65535, 666), Community(1, 1)])
        assert not cset.matches_any([Community(1, 1)])

    def test_union(self):
        a = CommunitySet.from_pairs([(1, 1)])
        b = CommunitySet.from_pairs([(2, 2)])
        assert len(a.union(b)) == 2

    def test_encode_decode_round_trip(self):
        cset = CommunitySet.from_pairs([(3356, 100), (65535, 666)])
        assert CommunitySet.decode(cset.encode()) == cset

    def test_decode_rejects_bad_length(self):
        with pytest.raises(ValueError):
            CommunitySet.decode(b"\x00\x01\x02")

    def test_empty_set_is_falsy(self):
        assert not CommunitySet()
        assert CommunitySet().encode() == b""

    @given(
        st.frozensets(
            st.tuples(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF)), max_size=20
        )
    )
    def test_round_trip_random(self, pairs):
        cset = CommunitySet.from_pairs(pairs)
        assert CommunitySet.decode(cset.encode()) == cset
        assert len(cset) == len(pairs)
