"""Unit tests for the patricia trie (`repro.bgp.trie`)."""

from __future__ import annotations

import pickle

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie


def P(text: str) -> Prefix:
    return Prefix.from_string(text)


@pytest.fixture
def trie() -> PrefixTrie:
    trie: PrefixTrie = PrefixTrie()
    for text in (
        "10.0.0.0/8",
        "10.1.0.0/16",
        "10.1.2.0/24",
        "10.2.0.0/16",
        "192.0.2.0/24",
        "2001:db8::/32",
        "2001:db8:1::/48",
    ):
        trie.insert(P(text), text)
    return trie


class TestInsertAndLookup:
    def test_exact_lookup(self, trie):
        assert trie.get(P("10.1.0.0/16")) == "10.1.0.0/16"
        assert trie[P("2001:db8::/32")] == "2001:db8::/32"
        assert P("10.1.0.0/16") in trie
        assert P("10.3.0.0/16") not in trie
        # A different length over the same address is a different key.
        assert P("10.1.0.0/17") not in trie

    def test_missing_key_raises(self, trie):
        with pytest.raises(KeyError):
            trie[P("172.16.0.0/12")]
        assert trie.get(P("172.16.0.0/12"), "fallback") == "fallback"

    def test_insert_returns_newness_and_replaces_value(self):
        trie: PrefixTrie = PrefixTrie()
        assert trie.insert(P("10.0.0.0/8"), 1) is True
        assert trie.insert(P("10.0.0.0/8"), 2) is False
        assert trie[P("10.0.0.0/8")] == 2
        assert len(trie) == 1

    def test_len_and_iteration_order(self, trie):
        assert len(trie) == 7
        prefixes = list(trie)
        # IPv4 first in address order, then IPv6.
        assert prefixes == [
            P("10.0.0.0/8"),
            P("10.1.0.0/16"),
            P("10.1.2.0/24"),
            P("10.2.0.0/16"),
            P("192.0.2.0/24"),
            P("2001:db8::/32"),
            P("2001:db8:1::/48"),
        ]

    def test_mapping_dunders(self):
        trie: PrefixTrie = PrefixTrie()
        trie[P("10.0.0.0/8")] = "value"
        assert trie[P("10.0.0.0/8")] == "value"
        del trie[P("10.0.0.0/8")]
        assert len(trie) == 0
        assert not trie

    def test_default_route_is_storable(self):
        trie: PrefixTrie = PrefixTrie()
        trie.insert(P("0.0.0.0/0"), "default")
        trie.insert(P("::/0"), "default6")
        assert trie.longest_match("203.0.113.9") == (P("0.0.0.0/0"), "default")
        assert trie.longest_match("2001:db8::1") == (P("::/0"), "default6")
        trie.remove(P("0.0.0.0/0"))
        assert trie.longest_match("203.0.113.9") is None


class TestRemove:
    def test_remove_returns_value(self, trie):
        assert trie.remove(P("10.1.0.0/16")) == "10.1.0.0/16"
        assert P("10.1.0.0/16") not in trie
        # Children of the removed node survive.
        assert P("10.1.2.0/24") in trie
        assert len(trie) == 6

    def test_remove_absent_raises(self, trie):
        with pytest.raises(KeyError):
            trie.remove(P("10.9.0.0/16"))
        with pytest.raises(KeyError):
            trie.remove(P("10.1.0.0/17"))

    def test_discard(self, trie):
        assert trie.discard(P("10.1.0.0/16")) is True
        assert trie.discard(P("10.1.0.0/16")) is False

    def test_remove_prunes_glue_nodes(self):
        # 10.0.0.0/9 and 10.128.0.0/9 force a glue split under 10.0.0.0/8;
        # removing one sibling must splice the glue node back out.
        trie: PrefixTrie = PrefixTrie()
        trie.insert(P("10.0.0.0/9"), "low")
        trie.insert(P("10.128.0.0/9"), "high")
        trie.remove(P("10.0.0.0/9"))
        assert list(trie) == [P("10.128.0.0/9")]
        assert trie.longest_match("10.200.0.1") == (P("10.128.0.0/9"), "high")
        trie.remove(P("10.128.0.0/9"))
        assert len(trie) == 0
        assert not trie.overlaps(P("0.0.0.0/0"))

    def test_interleaved_insert_remove_round_trips(self):
        trie: PrefixTrie = PrefixTrie()
        prefixes = [P(f"10.{i}.0.0/16") for i in range(32)]
        for prefix in prefixes:
            trie.insert(prefix, str(prefix))
        for prefix in prefixes[::2]:
            trie.remove(prefix)
        assert sorted(trie) == sorted(prefixes[1::2])
        for prefix in prefixes[::2]:
            trie.insert(prefix, "again")
        assert len(trie) == 32

    def test_clear(self, trie):
        trie.clear()
        assert len(trie) == 0
        assert trie.longest_match("10.1.2.3") is None


class TestLongestMatch:
    def test_most_specific_wins(self, trie):
        assert trie.longest_match("10.1.2.3")[0] == P("10.1.2.0/24")
        assert trie.longest_match("10.1.9.9")[0] == P("10.1.0.0/16")
        assert trie.longest_match("10.200.0.1")[0] == P("10.0.0.0/8")
        assert trie.longest_match("11.0.0.1") is None

    def test_accepts_prefix_queries(self, trie):
        assert trie.longest_match(P("10.1.2.0/25"))[0] == P("10.1.2.0/24")
        # An exact stored prefix matches itself.
        assert trie.longest_match(P("10.1.2.0/24"))[0] == P("10.1.2.0/24")

    def test_lookup_is_version_aware(self, trie):
        assert trie.lookup("2001:db8:1::5")[0] == P("2001:db8:1::/48")
        assert trie.lookup("2001:db9::1") is None
        assert trie.lookup("192.0.2.7")[0] == P("192.0.2.0/24")


class TestCoveringAndCovered:
    def test_covering_walks_to_root_most_specific_first(self, trie):
        covering = [p for p, _ in trie.covering(P("10.1.2.0/25"))]
        assert covering == [P("10.1.2.0/24"), P("10.1.0.0/16"), P("10.0.0.0/8")]

    def test_covering_include_exact(self, trie):
        with_exact = [p for p, _ in trie.covering(P("10.1.2.0/24"))]
        without = [p for p, _ in trie.covering(P("10.1.2.0/24"), include_exact=False)]
        assert with_exact == [P("10.1.2.0/24"), P("10.1.0.0/16"), P("10.0.0.0/8")]
        assert without == [P("10.1.0.0/16"), P("10.0.0.0/8")]

    def test_covered_subtree_walk(self, trie):
        covered = [p for p, _ in trie.covered(P("10.0.0.0/8"))]
        assert covered == [
            P("10.0.0.0/8"),
            P("10.1.0.0/16"),
            P("10.1.2.0/24"),
            P("10.2.0.0/16"),
        ]
        assert [p for p, _ in trie.covered(P("10.1.0.0/16"), include_exact=False)] == [
            P("10.1.2.0/24")
        ]

    def test_covered_of_unrelated_prefix_is_empty(self, trie):
        assert list(trie.covered(P("172.16.0.0/12"))) == []
        assert list(trie.covering(P("172.16.0.0/12"))) == []

    def test_overlaps_both_directions(self, trie):
        assert trie.overlaps(P("10.1.2.128/25"))  # covered by stored prefixes
        assert trie.overlaps(P("0.0.0.0/0"))  # covers stored prefixes
        assert not trie.overlaps(P("172.16.0.0/12"))
        assert trie.overlaps(P("2001:db8:1:2::/64"))
        assert not trie.overlaps(P("2001:db9::/32"))

    def test_versions_never_mix(self, trie):
        assert list(trie.covered(P("::/0"))) == [
            (P("2001:db8::/32"), "2001:db8::/32"),
            (P("2001:db8:1::/48"), "2001:db8:1::/48"),
        ]


class TestConstruction:
    def test_from_items(self):
        items = [(P("10.0.0.0/8"), 1), (P("192.0.2.0/24"), 2)]
        trie = PrefixTrie(items)
        assert sorted(trie.items()) == sorted(items)

    def test_repr(self, trie):
        assert "7 prefixes" in repr(trie)

    def test_picklable(self, trie):
        clone = pickle.loads(pickle.dumps(trie))
        assert sorted(clone.items()) == sorted(trie.items())
        assert clone.longest_match("10.1.2.3")[0] == P("10.1.2.0/24")
