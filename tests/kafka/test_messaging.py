"""Tests for the messaging substrate: topics, consumer groups, sync servers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.kafka.broker import MessageBroker, Topic
from repro.kafka.client import Consumer, Producer
from repro.kafka.sync import CompletenessSyncServer, TimeoutSyncServer, publish_bin_metadata


class TestTopic:
    def test_offsets_increase_per_partition(self):
        topic = Topic("t", num_partitions=1)
        first = topic.append("k", "a")
        second = topic.append("k", "b")
        assert (first.offset, second.offset) == (0, 1)

    def test_keyed_messages_land_in_same_partition(self):
        topic = Topic("t", num_partitions=4)
        partitions = {topic.append("stable-key", i).partition for i in range(10)}
        assert len(partitions) == 1

    def test_read_from_offset(self):
        topic = Topic("t")
        for value in "abc":
            topic.append(None, value)
        assert [m.value for m in topic.read(0, 1)] == ["b", "c"]
        assert [m.value for m in topic.read(0, 0, max_messages=2)] == ["a", "b"]

    def test_requires_positive_partitions(self):
        with pytest.raises(ValueError):
            Topic("t", num_partitions=0)


class TestBrokerAndClients:
    def test_consumer_group_walks_forward(self):
        broker = MessageBroker()
        producer = Producer(broker, default_topic="data")
        for value in range(5):
            producer.send(value)
        consumer = Consumer(broker, group="g", topics=["data"])
        first = consumer.poll(max_messages=3)
        assert [m.value for m in first] == [0, 1, 2]
        second = consumer.poll()
        assert [m.value for m in second] == [3, 4]
        assert consumer.poll() == []
        assert consumer.lag() == 0

    def test_independent_groups_see_all_messages(self):
        broker = MessageBroker()
        producer = Producer(broker, default_topic="data")
        for value in range(3):
            producer.send(value)
        a = Consumer(broker, group="a", topics=["data"])
        b = Consumer(broker, group="b", topics=["data"])
        assert len(a.poll()) == 3
        assert len(b.poll()) == 3

    def test_uncommitted_poll_is_replayed(self):
        broker = MessageBroker()
        Producer(broker, default_topic="data").send("x")
        consumer = Consumer(broker, group="g", topics=["data"])
        assert len(consumer.poll(commit=False)) == 1
        assert len(consumer.poll()) == 1

    def test_seek_to_beginning_replays(self):
        broker = MessageBroker()
        producer = Producer(broker, default_topic="data")
        for value in range(4):
            producer.send(value)
        consumer = Consumer(broker, group="g", topics=["data"])
        consumer.poll()
        consumer.seek_to_beginning()
        assert len(consumer.poll()) == 4

    def test_producer_requires_topic(self):
        with pytest.raises(ValueError):
            Producer(MessageBroker()).send("x")

    def test_bounded_poll_interleaves_topics_round_robin(self):
        # Regression: with max_messages set, topics used to be drained in
        # list order, so a busy first topic starved the rest.
        broker = MessageBroker()
        busy = Producer(broker, default_topic="busy")
        quiet = Producer(broker, default_topic="quiet")
        for value in range(100):
            busy.send(f"busy-{value}")
        for value in range(3):
            quiet.send(f"quiet-{value}")
        consumer = Consumer(broker, group="g", topics=["busy", "quiet"])
        polled = consumer.poll(max_messages=6)
        assert len(polled) == 6
        by_topic = {m.value for m in polled if m.topic == "quiet"}
        assert by_topic == {"quiet-0", "quiet-1", "quiet-2"}
        # one message per topic per round while both topics have backlog
        assert [m.topic for m in polled[:4]] == ["busy", "quiet", "busy", "quiet"]

    def test_create_topic_rejects_partition_count_mismatch(self):
        # "Ensure it exists" (no count) tolerates anything; an explicit
        # count that contradicts the existing topic must not be dropped
        # silently.
        broker = MessageBroker()
        broker.create_topic("data", num_partitions=4)
        assert broker.create_topic("data").num_partitions == 4
        with pytest.raises(ValueError, match="4 partitions"):
            broker.create_topic("data", num_partitions=1)

    def test_bounded_poll_interleaves_partitions_round_robin(self):
        # Same starvation pattern one level down: within a topic, a busy
        # partition 0 must not starve the rest under a bounded budget.
        broker = MessageBroker()
        broker.create_topic("data", num_partitions=2)
        producer = Producer(broker, default_topic="data")
        topic = broker.topic("data")
        busy_partition = topic.partition_for("busy-router")
        quiet_key = next(
            f"r{i}"
            for i in range(100)
            if topic.partition_for(f"r{i}") != busy_partition
        )
        for value in range(50):
            producer.send(f"busy-{value}", key="busy-router")
        for value in range(3):
            producer.send(f"quiet-{value}", key=quiet_key)
        consumer = Consumer(broker, group="g", topics=["data"])
        polled = consumer.poll(max_messages=6)
        assert len(polled) == 6
        quiet_seen = {m.value for m in polled if m.partition != busy_partition}
        assert quiet_seen == {"quiet-0", "quiet-1", "quiet-2"}
        # commits stay contiguous per partition: the next poll continues
        # where the busy partition left off
        assert [m.value for m in consumer.poll(max_messages=3)] == [
            "busy-3",
            "busy-4",
            "busy-5",
        ]

    def test_bounded_poll_commits_only_returned_messages(self):
        broker = MessageBroker()
        producer = Producer(broker, default_topic="data")
        for value in range(10):
            producer.send(value)
        consumer = Consumer(broker, group="g", topics=["data"])
        assert [m.value for m in consumer.poll(max_messages=4)] == [0, 1, 2, 3]
        # the fetched-but-unreturned tail is re-read by the next poll
        assert [m.value for m in consumer.poll(max_messages=4)] == [4, 5, 6, 7]
        assert [m.value for m in consumer.poll()] == [8, 9]

    def test_bounded_poll_exhausts_all_topics(self):
        broker = MessageBroker()
        for topic in ("a", "b", "c"):
            producer = Producer(broker, default_topic=topic)
            for value in range(2):
                producer.send(f"{topic}-{value}")
        consumer = Consumer(broker, group="g", topics=["a", "b", "c"])
        assert len(consumer.poll(max_messages=100)) == 6
        assert consumer.poll(max_messages=100) == []

    def test_lag_counts_unconsumed(self):
        broker = MessageBroker()
        producer = Producer(broker, default_topic="data")
        for value in range(7):
            producer.send(value)
        consumer = Consumer(broker, group="g", topics=["data"])
        consumer.poll(max_messages=2)
        assert consumer.lag() == 5

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(), max_size=50), st.integers(1, 5))
    def test_every_message_delivered_exactly_once_per_group(self, values, batch):
        broker = MessageBroker()
        producer = Producer(broker, default_topic="data")
        for value in values:
            producer.send(value)
        consumer = Consumer(broker, group="g", topics=["data"])
        received = []
        while True:
            messages = consumer.poll(max_messages=batch)
            if not messages:
                break
            received.extend(m.value for m in messages)
        assert received == values


class TestSyncServers:
    def _publish(self, broker, collector, interval, published_at):
        producer = Producer(broker)
        publish_bin_metadata(producer, collector, interval, diff_count=1, published_at=published_at)

    def test_completeness_waits_for_all_collectors(self):
        broker = MessageBroker()
        sync = CompletenessSyncServer(
            broker, "ioda", expected_collectors=["rrc0", "route-views2"], timeout=1800
        )
        self._publish(broker, "rrc0", 600, published_at=900)
        assert sync.step(now=901) == []
        self._publish(broker, "route-views2", 600, published_at=1000)
        ready = sync.step(now=1001)
        assert len(ready) == 1
        assert ready[0].interval_start == 600
        assert ready[0].complete
        # The decision is published on the application's sync topic.
        consumer = Consumer(broker, group="app", topics=[sync.ready_topic])
        assert len(consumer.poll()) == 1

    def test_completeness_timeout_releases_incomplete_bin(self):
        broker = MessageBroker()
        sync = CompletenessSyncServer(
            broker, "ioda", expected_collectors=["rrc0", "route-views2"], timeout=1800
        )
        self._publish(broker, "rrc0", 600, published_at=900)
        assert sync.step(now=1000) == []
        ready = sync.step(now=900 + 1800)
        assert len(ready) == 1
        assert not ready[0].complete

    def test_timeout_server_prioritises_latency(self):
        broker = MessageBroker()
        sync = TimeoutSyncServer(
            broker, "hijacks", expected_collectors=["rrc0", "route-views2"], timeout=120
        )
        self._publish(broker, "rrc0", 600, published_at=900)
        assert sync.step(now=950) == []
        ready = sync.step(now=1021)
        assert len(ready) == 1 and not ready[0].complete

    def test_each_bin_decided_once(self):
        broker = MessageBroker()
        sync = TimeoutSyncServer(broker, "app", expected_collectors=["rrc0"], timeout=60)
        self._publish(broker, "rrc0", 600, published_at=900)
        assert len(sync.step(now=1000)) == 1
        self._publish(broker, "rrc0", 600, published_at=1100)  # duplicate metadata
        assert sync.step(now=1200) == []
