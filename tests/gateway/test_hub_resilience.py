"""Supervised recovery and reconnect bookkeeping of the live gateway.

ISSUE 9 satellite: N injected bridge crashes yield exactly N crash
markers, zero duplicate elems and zero lost elems (the consumer group's
committed offsets are the resume point); a bounded restart budget
eventually gives up *cleanly* — subscribers finish with a distinct error,
never with a flush that looks like end-of-stream; and the ack/in-flight
retention that reconnect-with-cursor builds on replays exactly the
unacknowledged suffix.
"""

from __future__ import annotations

import pytest

from repro.bmp import BMPFeedProducer
from repro.bmp.source import BMPKafkaDataSource
from repro.core.filters import FilterSet
from repro.core.interfaces import LiveDataInterface
from repro.core.resilience import FaultPlan, RetryPolicy, inject_faults
from repro.core.stream import BGPStream
from repro.gateway.hub import StreamHub, Subscriber
from repro.kafka.broker import MessageBroker
from repro.utils.timeutil import SimulatedClock

from test_hub import BASE_TS, delivered, make_update, publish_feed, striped_feed

TOPIC = "openbmp.bmp_raw"


def supervised_hub(messages, plan, *, max_restarts=8, group="resilience.gw"):
    """A hub whose (fault-injected) stream is rebuilt by a factory.

    Every rebuilt source joins the same broker + consumer group, so the
    committed offsets survive each crash — exactly the production resume
    discipline.  The fault plan is shared across rebuilds: its call
    counter keeps advancing, so scripted faults hit whichever incarnation
    makes the fatal poll.
    """
    broker = publish_feed(messages)

    def stream_factory() -> BGPStream:
        source = BMPKafkaDataSource(broker, topics=[TOPIC], group=group)
        faulty = inject_faults(source, plan, ["poll"])
        interface = LiveDataInterface(
            source=faulty, max_empty_polls=2, poll_interval=0.0
        )
        return BGPStream(data_interface=interface)

    return StreamHub(
        stream_factory=stream_factory,
        max_restarts=max_restarts,
        restart_backoff=RetryPolicy(max_retries=max_restarts, base=0.0),
        clock=SimulatedClock(0.0),
    )


class TestSupervisedRecovery:
    def test_n_crashes_yield_n_markers_no_loss_no_duplicates(self):
        messages, expect = striped_feed(seconds=10, nets=("10.1", "10.2"))
        flat_expect = None

        # Fault-free reference run.
        clean_hub = supervised_hub(messages, FaultPlan())
        reference = clean_hub.subscribe(max_queued_windows=64)
        clean_hub.run()
        ref_prefixes, ref_times, ref_windows = delivered(reference)
        flat_expect = ref_prefixes
        assert sum(w.crash_before for w in ref_windows) == 0

        # Same scenario with three scripted non-transient poll crashes.
        # max_poll_messages is unbounded, so each successful poll drains
        # what is available; faults at later call indices land between
        # polls of different incarnations.
        plan = FaultPlan(fail_at=(0, 2, 4), error=RuntimeError)
        hub = supervised_hub(messages, plan)
        subscriber = hub.subscribe(max_queued_windows=64)
        hub.run()

        prefixes, times, windows = delivered(subscriber)
        assert prefixes == flat_expect  # zero loss, zero duplicates, in order
        assert times == ref_times
        assert sum(w.crash_before for w in windows) == 3  # N crashes, N markers
        assert hub.crashes == 3
        assert hub.restarts == 3
        assert not hub.gave_up
        assert subscriber.error is None  # recovered: clean finish
        assert subscriber.crashes == 3
        stats = hub.stats()
        assert stats["crashes"] == 3 and stats["restarts"] == 3
        assert stats["error"] == "RuntimeError"  # last crash stays visible

    def test_restart_budget_exhaustion_gives_up_with_a_distinct_error(self):
        messages, _ = striped_feed(seconds=4, nets=("10.1",))
        plan = FaultPlan(fail_from=0, error=RuntimeError)  # permanent outage
        hub = supervised_hub(messages, plan, max_restarts=2)
        subscriber = hub.subscribe()

        with pytest.raises(RuntimeError):
            hub.run()  # inline callers see the terminal error

        assert hub.gave_up
        assert hub.crashes == 3  # initial + 2 restarts
        assert hub.restarts == 2
        assert subscriber.finished  # drains terminate...
        assert isinstance(subscriber.error, RuntimeError)  # ...but not cleanly
        stats = hub.stats()
        assert stats["gave_up"] is True
        assert stats["error"] == "RuntimeError"
        assert stats["restarts"] == 2

    def test_threaded_give_up_is_recorded_not_swallowed(self):
        messages, _ = striped_feed(seconds=3, nets=("10.1",))
        plan = FaultPlan(fail_from=0, error=RuntimeError)
        hub = supervised_hub(messages, plan, max_restarts=1)
        subscriber = hub.subscribe()
        hub.start()
        hub.join(timeout=10.0)
        assert hub.finished
        assert hub.gave_up
        assert isinstance(hub.error, RuntimeError)
        # The satellite bugfix: pop_window() callers can distinguish this
        # from clean end-of-stream.
        assert subscriber.finished and isinstance(subscriber.error, RuntimeError)

    def test_no_factory_means_first_crash_is_terminal_but_surfaced(self):
        messages, _ = striped_feed(seconds=3, nets=("10.1",))
        broker = publish_feed(messages)
        source = BMPKafkaDataSource(broker, topics=[TOPIC], group="one-shot.gw")
        faulty = inject_faults(source, FaultPlan(fail_at=(0,), error=RuntimeError), ["poll"])
        stream = BGPStream(
            data_interface=LiveDataInterface(
                source=faulty, max_empty_polls=1, poll_interval=0.0
            )
        )
        hub = StreamHub(stream)
        subscriber = hub.subscribe()
        with pytest.raises(RuntimeError):
            hub.run()
        assert hub.crashes == 1 and hub.restarts == 0 and hub.gave_up
        assert isinstance(subscriber.error, RuntimeError)

    def test_transient_faults_are_absorbed_below_the_supervisor(self):
        """With a retry policy on the poll path, scripted transient faults
        never become bridge crashes at all."""
        messages, expect = striped_feed(seconds=6, nets=("10.1",))
        broker = publish_feed(messages)
        plan = FaultPlan(fail_at=(0, 1, 3))  # InjectedFault is transient
        source = BMPKafkaDataSource(broker, topics=[TOPIC], group="transient.gw")
        interface = LiveDataInterface(
            source=inject_faults(source, plan, ["poll"]),
            max_empty_polls=2,
            poll_interval=0.0,
            retry_policy=RetryPolicy(max_retries=4, base=0.0),
            clock=SimulatedClock(0.0),
        )
        hub = StreamHub(BGPStream(data_interface=interface))
        subscriber = hub.subscribe(max_queued_windows=64)
        hub.run()
        prefixes, _, windows = delivered(subscriber)
        assert prefixes == expect["10.1"]
        assert interface.poll_retries == 3
        assert hub.crashes == 0
        assert sum(w.crash_before for w in windows) == 0

    def test_late_subscriber_to_a_dead_hub_sees_the_error(self):
        messages, _ = striped_feed(seconds=3, nets=("10.1",))
        plan = FaultPlan(fail_from=0, error=RuntimeError)
        hub = supervised_hub(messages, plan, max_restarts=0)
        with pytest.raises(RuntimeError):
            hub.run()
        late = hub.subscribe()
        assert late.finished
        assert isinstance(late.error, RuntimeError)


class TestAckRetention:
    def push_windows(self, subscriber, count, elems_per_window=1):
        for i in range(count):
            for j in range(elems_per_window):
                subscriber.offer(_elem(BASE_TS + i, f"10.0.{i}.0/24"))
        subscriber.flush()

    def test_popped_windows_are_retained_until_acked(self):
        subscriber = Subscriber(retain_unacked=True, max_queued_windows=16)
        self.push_windows(subscriber, 4)
        seen = [subscriber.pop_window() for _ in range(4)]
        assert subscriber.inflight_count == 4
        released = subscriber.ack(seen[1].end)
        assert released == 2
        assert subscriber.inflight_count == 2
        assert subscriber.acked_through == seen[1].end

    def test_requeue_replays_exactly_the_unacked_suffix_in_order(self):
        subscriber = Subscriber(retain_unacked=True, max_queued_windows=16)
        self.push_windows(subscriber, 5)
        seen = [subscriber.pop_window() for _ in range(5)]
        subscriber.ack(seen[2].end)  # client processed the first three
        assert subscriber.requeue_unacked() == 2
        replay = [subscriber.pop_window() for _ in range(2)]
        assert [w.start for w in replay] == [seen[3].start, seen[4].start]
        assert subscriber.pop_window() is None

    def test_ack_is_monotonic(self):
        subscriber = Subscriber(retain_unacked=True)
        self.push_windows(subscriber, 2)
        first = subscriber.pop_window()
        second = subscriber.pop_window()
        subscriber.ack(second.end)
        subscriber.ack(first.end)  # a stale ack must not regress
        assert subscriber.acked_through == second.end

    def test_inflight_overflow_sheds_oldest_with_gap_accounting(self):
        subscriber = Subscriber(retain_unacked=True, max_queued_windows=2)
        # Pop each window as it closes without ever acking: the in-flight
        # buffer is bounded at max_queued_windows, shedding oldest-first.
        for i in range(6):
            for _ in range(2):
                subscriber.offer(_elem(BASE_TS + i, f"10.0.{i}.0/24"))
            subscriber.flush()
            assert subscriber.pop_window() is not None
        assert subscriber.inflight_count == 2
        subscriber.requeue_unacked()
        survivors = []
        while (window := subscriber.pop_window()) is not None:
            survivors.append(window)
            subscriber.ack(window.end)
        total_gap = sum(w.gap_before for w in survivors)
        total_dropped = sum(w.dropped_elems for w in survivors)
        assert total_gap == 4  # four shed windows, all marked, never silent
        assert total_dropped == total_gap * 2  # two elems per shed window

    def test_non_retaining_subscriber_keeps_the_old_contract(self):
        subscriber = Subscriber()
        self.push_windows(subscriber, 3)
        while subscriber.pop_window() is not None:
            pass
        assert subscriber.inflight_count == 0
        assert subscriber.requeue_unacked() == 0

    def test_crash_markers_survive_the_retention_path(self):
        subscriber = Subscriber(retain_unacked=True, max_queued_windows=8)
        subscriber.offer(_elem(BASE_TS, "10.0.0.0/24"))
        subscriber.mark_crash()
        subscriber.offer(_elem(BASE_TS + 1, "10.0.1.0/24"))
        subscriber.flush()
        first = subscriber.pop_window()
        second = subscriber.pop_window()
        # The marker rides the first window *delivered* after the crash —
        # the one that was open when the bridge died and stayed open so the
        # restarted bridge could keep filling it without overlap.
        assert first.crash_before == 1
        assert first.has_gap
        assert second.crash_before == 0
        subscriber.requeue_unacked()
        replayed = [subscriber.pop_window() for _ in range(2)]
        assert [w.crash_before for w in replayed] == [1, 0]


def _elem(ts, prefix):
    """One matched elem via the real decode path (keeps BGPElem realistic)."""
    message = make_update(65001, prefix, ts)
    broker = MessageBroker()
    BMPFeedProducer(broker, router="elem.gw").publish(message)
    stream = BGPStream(
        live=LiveDataInterface(broker=broker, max_empty_polls=1, poll_interval=0.0)
    )
    for record in stream.records():
        for elem in record.elems():
            return elem
    raise AssertionError("no elem decoded")
