"""End-to-end gateway tests over real sockets (stdlib-only clients).

One bridge thread decodes the BMP-over-Kafka feed; N asyncio clients —
SSE and WebSocket — subscribe with their own filters.  Tests assert exact
filtered delivery in timestamp order, live subscription multiplexing with
acks, the /stats decode-once counters, and that a deliberately slow client
(tiny socket buffers, delayed reads) sees coalesced/gappy windows while a
fast peer on the same feed stays gapless and the decode loop finishes.
"""

from __future__ import annotations

import asyncio
import base64
import io
import json
import socket
import threading
import time

from repro.core import profiling
from repro.gateway import cli
from repro.gateway.protocol import (
    OP_CLOSE,
    OP_TEXT,
    WSFrameParser,
    encode_ws_frame,
    websocket_accept,
)
from repro.gateway.server import GatewayServer

from test_hub import BASE_TS, live_hub, make_update, striped_feed

TIMEOUT = 30  # generous outer bound; everything real finishes in ms


async def await_subscribers(hub, count):
    while hub.subscriber_count < count:
        await asyncio.sleep(0.005)


async def open_client(port, rcvbuf=None):
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    if rcvbuf is not None:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
    sock.setblocking(False)
    loop = asyncio.get_running_loop()
    await loop.sock_connect(sock, ("127.0.0.1", port))
    return await asyncio.open_connection(sock=sock)


async def sse_events(reader, writer, query):
    """GET /stream/sse and read events until the end marker."""
    writer.write(f"GET /stream/sse?{query} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    assert b"200 OK" in head and b"text/event-stream" in head
    events = []
    while True:
        line = await reader.readline()
        if not line:
            break
        if line.startswith(b"data: "):
            payload = json.loads(line[6:])
            events.append(payload)
            if payload.get("type") == "end":
                break
    writer.close()
    return events


def window_prefixes(events):
    return [
        elem["fields"]["prefix"]
        for event in events
        if event.get("type") == "window"
        for elem in event["elems"]
    ]


class TestSSE:
    def test_disjoint_subscribers_get_exact_ordered_slices(self):
        messages, expect = striped_feed(seconds=10, nets=("10.1", "10.2"))
        hub = live_hub(messages)

        async def scenario():
            server = await GatewayServer(hub).start()
            try:

                async def client(net):
                    reader, writer = await open_client(server.port)
                    return await sse_events(
                        reader, writer, f"prefix={net}.0.0%2F16&window=2"
                    )

                results, _ = await asyncio.gather(
                    asyncio.gather(client("10.1"), client("10.2")),
                    _start_after(hub, 2),
                )
                return results
            finally:
                await server.close()

        results = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
        for events, net in zip(results, ("10.1", "10.2")):
            assert window_prefixes(events) == expect[net]
            windows = [e for e in events if e.get("type") == "window"]
            starts = [w["window_start"] for w in windows]
            assert starts == sorted(starts)
            assert all(w["window_end"] - w["window_start"] == 2 for w in windows)
            times = [elem["time"] for w in windows for elem in w["elems"]]
            assert times == sorted(times)
            assert not any(
                key in w for w in windows for key in ("coalesced", "gap_before")
            )
            assert events[-1]["type"] == "end"
        assert hub.stats()["frames_decoded"] == len(messages)  # decoded once

    def test_interval_subscription_bounds_the_stream(self):
        messages, _ = striped_feed(seconds=8, nets=("10.1",))
        hub = live_hub(messages)

        async def scenario():
            server = await GatewayServer(hub).start()
            try:
                reader, writer = await open_client(server.port)
                events, _ = await asyncio.gather(
                    sse_events(
                        reader,
                        writer,
                        f"interval={BASE_TS + 2}%2C{BASE_TS + 5}",
                    ),
                    _start_after(hub, 1),
                )
                return events
            finally:
                await server.close()

        events = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
        times = [e["time"] for w in events if w.get("type") == "window" for e in w["elems"]]
        assert times == [BASE_TS + 2, BASE_TS + 3, BASE_TS + 4, BASE_TS + 5]


class TestWebSocket:
    def test_stream_with_live_multiplexing_and_acks(self):
        messages, expect = striped_feed(seconds=8, nets=("10.1", "10.2"))
        hub = live_hub(messages)

        async def scenario():
            server = await GatewayServer(hub).start()
            try:
                reader, writer = await open_client(server.port)
                key = base64.b64encode(b"0123456789abcdef").decode()
                writer.write(
                    (
                        "GET /stream/ws?window=1000000 HTTP/1.1\r\nHost: x\r\n"
                        "Upgrade: websocket\r\nConnection: Upgrade\r\n"
                        f"Sec-WebSocket-Key: {key}\r\n\r\n"
                    ).encode()
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                assert b"101 Switching Protocols" in head
                assert websocket_accept(key).encode() in head

                def control(message):
                    writer.write(
                        encode_ws_frame(json.dumps(message).encode(), OP_TEXT, mask=True)
                    )

                # Start wide open, then narrow to one /16 before frames flow.
                control({"action": "add_filter", "name": "prefix", "value": "10.1.0.0/16"})
                control({"action": "bogus"})
                await writer.drain()

                parser = WSFrameParser()
                received, closed = [], False
                acks_seen = 0

                async def pump():
                    nonlocal closed, acks_seen
                    while not closed:
                        data = await reader.read(4096)
                        if not data:
                            return
                        for opcode, payload in parser.feed(data):
                            if opcode == OP_CLOSE:
                                closed = True
                                return
                            if opcode != OP_TEXT:
                                continue
                            message = json.loads(payload)
                            received.append(message)
                            if message.get("type") in ("ack", "error"):
                                acks_seen += 1
                                if acks_seen == 2:
                                    started.set()

                started = asyncio.Event()

                async def start_when_acked():
                    await started.wait()
                    await _start_after(hub, 1)

                await asyncio.gather(pump(), start_when_acked())
                return received, closed
            finally:
                await server.close()

        received, closed = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
        assert closed  # server sent a proper close frame after "end"
        acks = [m for m in received if m.get("type") == "ack"]
        errors = [m for m in received if m.get("type") == "error"]
        assert acks == [
            {"type": "ack", "action": "add_filter", "name": "prefix", "value": "10.1.0.0/16"}
        ]
        assert len(errors) == 1 and "bogus" in errors[0]["error"]
        windows = [m for m in received if m.get("type") == "window"]
        prefixes = [e["fields"]["prefix"] for w in windows for e in w["elems"]]
        assert prefixes == striped_feed(seconds=8, nets=("10.1", "10.2"))[1]["10.1"]
        assert received[-1]["type"] == "end"

    def test_ws_without_upgrade_header_is_rejected(self):
        hub = live_hub([make_update(65001, "10.1.0.0/24", BASE_TS)])

        async def scenario():
            server = await GatewayServer(hub).start()
            try:
                reader, writer = await open_client(server.port)
                writer.write(b"GET /stream/ws HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                return await reader.read()
            finally:
                await server.close()

        response = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
        assert b"400 Bad Request" in response
        assert b"upgrade required" in response


class TestHTTPSurface:
    def request(self, hub, raw):
        async def scenario():
            server = await GatewayServer(hub).start()
            try:
                reader, writer = await open_client(server.port)
                writer.write(raw)
                await writer.drain()
                return await reader.read()
            finally:
                await server.close()

        return asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))

    def test_unknown_query_parameter_is_a_400(self):
        hub = live_hub([make_update(65001, "10.1.0.0/24", BASE_TS)])
        response = self.request(
            hub, b"GET /stream/sse?bogus=1 HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert b"400 Bad Request" in response
        assert b"unknown query parameter" in response

    def test_unknown_path_is_a_404_and_post_a_405(self):
        hub = live_hub([make_update(65001, "10.1.0.0/24", BASE_TS)])
        assert b"404 Not Found" in self.request(
            hub, b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert b"405 Method Not Allowed" in self.request(
            hub, b"POST /stats HTTP/1.1\r\nHost: x\r\n\r\n"
        )

    def test_stats_reports_decode_once_counters(self):
        messages, _ = striped_feed(seconds=4, nets=("10.1",))
        hub = live_hub(messages)
        hub.run()  # feed fully decoded before the probe
        profiling.enable()
        try:
            response = self.request(hub, b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
        finally:
            profiling.disable()
        body = json.loads(response.split(b"\r\n\r\n", 1)[1])
        assert body["frames_decoded"] == len(messages)
        assert body["records_seen"] == len(messages)
        assert body["finished"] is True
        assert "decode" in body  # profiling counters ride along when enabled
        assert "intern" in body


class TestBackpressureEndToEnd:
    def test_slow_client_sees_gaps_while_fast_peer_is_gapless(self):
        seconds, per_second = 120, 4
        nets = tuple(f"10.{i + 1}" for i in range(per_second))
        messages, _ = striped_feed(seconds=seconds, nets=nets)
        hub = live_hub(messages)
        finished_before_slow_read = []

        async def scenario():
            # Tiny buffers: the slow client's unread bytes block its sender
            # coroutine almost immediately instead of hiding in the kernel.
            server = await GatewayServer(hub, socket_buffer=2048).start()
            try:

                async def fast():
                    reader, writer = await open_client(server.port)
                    return await sse_events(reader, writer, "window=1&max-queued=1000")

                async def slow():
                    reader, writer = await open_client(server.port, rcvbuf=4096)
                    writer.write(
                        b"GET /stream/sse?window=1&max-queued=3&coalesce-budget=24"
                        b" HTTP/1.1\r\nHost: x\r\n\r\n"
                    )
                    await writer.drain()
                    # Don't read anything until the whole feed has decoded:
                    # proves a stalled consumer cannot stall the bridge.
                    while not hub.finished:
                        await asyncio.sleep(0.01)
                    finished_before_slow_read.append(True)
                    events = []
                    while True:
                        line = await reader.readline()
                        if not line:
                            break
                        if line.startswith(b"data: "):
                            payload = json.loads(line[6:])
                            events.append(payload)
                            if payload.get("type") == "end":
                                break
                    writer.close()
                    return events

                (fast_events, slow_events), _ = await asyncio.gather(
                    asyncio.gather(fast(), slow()), _start_after(hub, 2)
                )
                return fast_events, slow_events
            finally:
                await server.close()

        fast_events, slow_events = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT * 2))
        assert finished_before_slow_read  # decode loop never waited for the client

        fast_windows = [e for e in fast_events if e.get("type") == "window"]
        assert len(window_prefixes(fast_events)) == len(messages)
        assert not any(
            key in w for w in fast_windows for key in ("coalesced", "gap_before", "dropped_elems")
        )

        slow_windows = [e for e in slow_events if e.get("type") == "window"]
        assert slow_events[-1]["type"] == "end"
        assert any("coalesced" in w or "gap_before" in w for w in slow_windows)
        # Exact wire-level accounting: every elem either arrived or is
        # counted by a gap marker on a delivered window.
        delivered = sum(len(w["elems"]) for w in slow_windows)
        dropped = sum(w.get("dropped_elems", 0) for w in slow_windows)
        assert delivered + dropped == len(messages)
        assert delivered < len(messages)  # backpressure actually engaged


class TestCLI:
    def test_exit_when_drained_serves_a_recorded_feed(self, tmp_path):
        messages, expect = striped_feed(seconds=6, nets=("10.1", "10.2"))
        path = tmp_path / "frames.bmp"
        path.write_bytes(b"".join(m.encode() for m in messages))
        out = io.StringIO()
        args = cli.build_parser().parse_args(
            [
                "--live", str(path),
                "--port", "0",
                "--await-subscribers", "1",
                "--idle-polls", "3",
                "--poll-interval", "0.01",
                "--exit-when-drained",
                "--decode-stats",
            ]
        )
        result = {}

        def serve():
            result["code"] = cli.run(args, out)

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.time() + TIMEOUT
        port = None
        while port is None and time.time() < deadline:
            for line in out.getvalue().splitlines():
                if "serving on" in line:
                    port = int(line.rsplit(":", 1)[1])
            time.sleep(0.01)
        assert port, f"no port line in {out.getvalue()!r}"

        with socket.create_connection(("127.0.0.1", port), timeout=TIMEOUT) as sock:
            sock.settimeout(TIMEOUT)
            sock.sendall(
                b"GET /stream/sse?prefix=10.1.0.0%2F16 HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            blob = b""
            while b'"type":"end"' not in blob:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                blob += chunk
        thread.join(timeout=TIMEOUT)
        assert not thread.is_alive()
        assert result["code"] == 0
        events = [
            json.loads(line[6:])
            for line in blob.decode().split("\n")
            if line.startswith("data: ")
        ]
        assert window_prefixes(events) == expect["10.1"]
        # --decode-stats prints the profiling summary on exit.
        assert any(line.startswith("# ") and "frames" in line for line in out.getvalue().splitlines())


async def _start_after(hub, count):
    """Start the decode loop once ``count`` subscribers joined."""
    await await_subscribers(hub, count)
    hub.start()
