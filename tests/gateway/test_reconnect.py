"""Reconnect-with-cursor session registry: attach, park, resume, reap.

These tests drive :meth:`GatewayServer._attach` / ``_release`` directly —
no sockets — so every transition of the durable-session state machine is
deterministic: a ``session=`` subscription retains delivered windows, a
disconnect parks it, ``resume=<session>:<boundary>`` acks through the
boundary and replays the rest, stale resume tokens answer 410
(:class:`ResumeGone`), and parked sessions idle past ``session_ttl`` are
reaped.  The socket-level acceptance run (reconnect across a forced hub
restart) lives in ``tests/chaos/test_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.core.interfaces import LiveDataInterface
from repro.core.stream import BGPStream
from repro.gateway.protocol import HTTPRequest
from repro.gateway.server import GatewayServer, ResumeGone

from test_hub import BASE_TS, live_hub, make_update, publish_feed


def request(query=(), headers=None) -> HTTPRequest:
    return HTTPRequest("GET", "/stream/sse", list(query), dict(headers or {}))


def make_elems(count, net="10.9"):
    """``count`` decoded elems, one per second (realistic BGPElem objects)."""
    messages = [
        make_update(65001, f"{net}.{i}.0/24", BASE_TS + i) for i in range(count)
    ]
    stream = BGPStream(
        live=LiveDataInterface(
            broker=publish_feed(messages), max_empty_polls=1, poll_interval=0.0
        )
    )
    return [elem for record in stream.records() for elem in record.elems()]


def idle_server(session_ttl=60.0) -> GatewayServer:
    """A server over an un-started hub: the registry works without sockets."""
    hub = live_hub([make_update(65001, "10.0.0.0/24", BASE_TS)])
    return GatewayServer(hub, session_ttl=session_ttl)


def fill(subscriber, elems):
    for elem in elems:
        subscriber.offer(elem)
    subscriber.flush()


class TestSessionLifecycle:
    def test_session_subscription_is_durable_and_named(self):
        server = idle_server()
        subscriber, session = server._attach(
            request([("session", "s1"), ("window", "1")])
        )
        assert session is not None and session.id == "s1" and session.attached
        assert subscriber.name == "s1"
        assert server.session_count == 1
        # Durable means retaining: popped windows wait for an ack.
        fill(subscriber, make_elems(2))
        subscriber.pop_window()
        assert subscriber.inflight_count == 1

    def test_blank_session_gets_a_server_generated_id(self):
        server = idle_server()
        _, session = server._attach(request([("session", "")]))
        assert session is not None and len(session.id) == 12
        assert server.session_count == 1

    def test_ephemeral_subscriber_is_unsubscribed_on_release(self):
        server = idle_server()
        subscriber, session = server._attach(request([("window", "1")]))
        assert session is None
        assert subscriber.inflight_count == 0  # no retention without a session
        server._release(subscriber, session)
        assert server.hub.subscriber_count == 0

    def test_release_parks_an_unfinished_session(self):
        server = idle_server()
        subscriber, session = server._attach(request([("session", "s1")]))
        server._release(subscriber, session)
        assert not session.attached
        assert session.detached_at is not None
        assert server.session_count == 1  # parked, not dropped
        assert server.hub.subscriber_count == 1  # still fed while parked

    def test_release_drops_a_finished_drained_session(self):
        server = idle_server()
        subscriber, session = server._attach(
            request([("session", "s1"), ("window", "1")])
        )
        fill(subscriber, make_elems(1))
        subscriber.flush(finished=True)
        while subscriber.pop_window() is not None:
            pass
        server._release(subscriber, session)
        assert server.session_count == 0
        assert server.hub.subscriber_count == 0


class TestResume:
    def attach_and_deliver(self, server, windows=4):
        subscriber, session = server._attach(
            request([("session", "s1"), ("window", "1")])
        )
        fill(subscriber, make_elems(windows + 1))  # +1 closes the last window
        seen = [subscriber.pop_window() for _ in range(windows)]
        assert all(seen)
        server._release(subscriber, session)
        return subscriber, session, seen

    def test_resume_acks_through_the_boundary_and_replays_the_rest(self):
        server = idle_server()
        subscriber, session, seen = self.attach_and_deliver(server)
        resumed, resession = server._attach(
            request([("resume", f"s1:{seen[1].end}")])
        )
        assert resumed is subscriber and resession is session and session.attached
        assert subscriber.acked_through == seen[1].end
        replay = [subscriber.pop_window() for _ in range(2)]
        assert [w.start for w in replay] == [seen[2].start, seen[3].start]

    def test_last_event_id_header_is_a_resume_token(self):
        server = idle_server()
        subscriber, _session, seen = self.attach_and_deliver(server)
        resumed, _ = server._attach(
            request(headers={"last-event-id": f"s1:{seen[2].end}"})
        )
        assert resumed is subscriber
        assert subscriber.acked_through == seen[2].end

    def test_bare_session_reattach_replays_everything_unacked(self):
        server = idle_server()
        subscriber, session, seen = self.attach_and_deliver(server)
        resumed, _ = server._attach(request([("session", "s1")]))
        assert resumed is subscriber
        assert subscriber.acked_through is None  # no ack without a token
        replay = [subscriber.pop_window() for _ in range(len(seen))]
        assert [w.start for w in replay] == [w.start for w in seen]

    def test_resume_of_an_unknown_session_is_gone(self):
        server = idle_server()
        with pytest.raises(ResumeGone):
            server._attach(request([("resume", "nope:123")]))

    def test_resume_while_attached_is_gone(self):
        server = idle_server()
        server._attach(request([("session", "s1")]))
        with pytest.raises(ResumeGone):
            server._attach(request([("resume", "s1:0")]))

    def test_malformed_resume_tokens_are_bad_requests(self):
        server = idle_server()
        with pytest.raises(ValueError):
            server._attach(request([("resume", "no-colon")]))
        with pytest.raises(ValueError):
            server._attach(request([("resume", "s1:not-a-number")]))

    def test_ws_ack_control_frame_releases_inflight_windows(self):
        server = idle_server()
        subscriber, _session, seen = self.attach_and_deliver(server)
        response = GatewayServer._apply_control(
            subscriber, b'{"action":"ack","window_end":%d}' % seen[2].end
        )
        assert response == {
            "type": "ack",
            "action": "ack",
            "window_end": seen[2].end,
            "released": 3,
        }
        assert subscriber.inflight_count == 1


class TestReaping:
    def test_parked_sessions_expire_after_the_ttl(self):
        server = idle_server(session_ttl=5.0)
        subscriber, session = server._attach(request([("session", "s1")]))
        server._release(subscriber, session)
        parked_at = session.detached_at
        assert server.reap_idle_sessions(now=parked_at + 4.9) == 0
        assert server.reap_idle_sessions(now=parked_at + 5.1) == 1
        assert server.session_count == 0
        assert server.hub.subscriber_count == 0  # retained windows freed
        assert server.sessions_reaped == 1
        with pytest.raises(ResumeGone):  # the cursor is gone for good
            server._attach(request([("resume", "s1:0")]))

    def test_attached_sessions_are_never_reaped(self):
        server = idle_server(session_ttl=0.0)
        server._attach(request([("session", "s1")]))
        assert server.reap_idle_sessions(now=1e9) == 0
        assert server.session_count == 1
