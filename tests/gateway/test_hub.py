"""StreamHub fan-out semantics: decode once, deliver exactly, never stall.

ISSUE 7 satellite: N concurrent subscribers with disjoint and overlapping
filters receive exactly the elems their FilterSet admits, in timestamp
order; a deliberately slow subscriber observes coalesced/dropped windows
(with gap markers) while a fast peer on the same feed stays gapless — and
the decode loop finishes regardless.
"""

from __future__ import annotations

import threading

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bmp import BMPFeedProducer, BMPMessage, BMPPeerHeader
from repro.core import profiling
from repro.core.filters import FilterSet
from repro.core.interfaces import LiveDataInterface
from repro.core.stream import BGPStream
from repro.gateway.hub import GatewayWindow, StreamHub, Subscriber
from repro.kafka.broker import MessageBroker

BASE_TS = 1_450_000_000


def make_update(peer_asn, prefix, ts):
    peer = BMPPeerHeader(
        address=f"10.0.0.{peer_asn - 65000}", asn=peer_asn, timestamp_sec=ts
    )
    update = BGPUpdate(
        announced=[Prefix.from_string(prefix)],
        attributes=PathAttributes(
            as_path=ASPath.from_asns([peer_asn, 3356, 15169]),
            next_hop="192.0.2.1",
        ),
    )
    return BMPMessage.route_monitoring(peer, update)


def publish_feed(messages) -> MessageBroker:
    broker = MessageBroker()
    producer = BMPFeedProducer(broker, router="rtr1.gw")
    for message in messages:
        producer.publish(message)
    return broker


def live_hub(messages) -> StreamHub:
    stream = BGPStream(
        live=LiveDataInterface(
            broker=publish_feed(messages), max_empty_polls=1, poll_interval=0.0
        )
    )
    return StreamHub(stream)


def striped_feed(seconds=12, nets=("10.1", "10.2", "10.3")):
    """One announcement per net per second, two peers alternating."""
    messages, expect = [], {net: [] for net in nets}
    for i in range(seconds):
        for j, net in enumerate(nets):
            prefix = f"{net}.{i}.0/24"
            messages.append(make_update(65001 + (i + j) % 2, prefix, BASE_TS + i))
            expect[net].append(prefix)
    return messages, expect


def delivered(subscriber):
    """(prefixes, times, windows) drained from a subscriber, in pop order."""
    prefixes, times, windows = [], [], []
    while (window := subscriber.pop_window()) is not None:
        windows.append(window)
        for elem in window.elems:
            prefixes.append(str(elem.prefix))
            times.append(elem.time)
    return prefixes, times, windows


class TestFanOut:
    def test_disjoint_filters_partition_the_feed_exactly(self):
        messages, expect = striped_feed()
        hub = live_hub(messages)
        subs = {
            net: hub.subscribe(FilterSet().add("prefix", f"{net}.0.0/16"))
            for net in expect
        }
        hub.run()
        total = 0
        for net, subscriber in subs.items():
            prefixes, times, windows = delivered(subscriber)
            assert prefixes == expect[net]  # exactly its slice, nothing else
            assert times == sorted(times)  # timestamp order
            starts = [w.start for w in windows]
            assert starts == sorted(starts)
            assert not any(w.has_gap for w in windows)
            total += len(prefixes)
        assert total == hub.elems_delivered == len(messages)

    def test_overlapping_filters_see_shared_elem_objects(self):
        messages, expect = striped_feed()
        hub = live_hub(messages)
        by_prefix = hub.subscribe(FilterSet().add("prefix", "10.1.0.0/16"))
        by_peer = hub.subscribe(FilterSet().add("peer-asn", "65001"))
        hub.run()
        prefix_elems = [e for w in by_prefix.drain() for e in w.elems]
        peer_elems = [e for w in by_peer.drain() for e in w.elems]
        assert [str(e.prefix) for e in prefix_elems] == expect["10.1"]
        assert all(e.peer_asn == 65001 for e in peer_elems)
        # The overlap is delivered to both — as the *same* decoded objects
        # (fan-out cost is match_elem, never a re-decode).
        overlap = {id(e) for e in prefix_elems} & {id(e) for e in peer_elems}
        expected_overlap = [e for e in prefix_elems if e.peer_asn == 65001]
        assert len(expected_overlap) > 0
        assert overlap == {id(e) for e in expected_overlap}
        assert hub.elems_delivered == len(prefix_elems) + len(peer_elems)

    def test_decode_happens_once_for_many_subscribers(self):
        messages, _ = striped_feed()
        hub = live_hub(messages)
        for _ in range(50):
            hub.subscribe(FilterSet())
        profiling.enable()
        try:
            hub.run()
            stats = profiling.snapshot()
        finally:
            profiling.disable()
        source = hub.stream._interface.source
        assert source.frames_decoded == len(messages)  # once, not 50×
        assert stats.bmp_frames_scanned == len(messages)
        assert hub.elems_seen == len(messages)
        assert hub.elems_delivered == 50 * len(messages)
        assert hub.stats()["frames_decoded"] == len(messages)

    def test_unmatched_subscriber_gets_no_windows_but_finishes(self):
        messages, _ = striped_feed(seconds=3)
        hub = live_hub(messages)
        subscriber = hub.subscribe(FilterSet().add("prefix-exact", "192.0.2.0/24"))
        hub.run()
        assert subscriber.finished
        assert subscriber.pop_window() is None
        assert subscriber.snapshot()["elems_matched"] == 0

    def test_late_subscriber_to_finished_feed_terminates(self):
        hub = live_hub([make_update(65001, "10.1.0.0/24", BASE_TS)])
        hub.run()
        late = hub.subscribe(FilterSet())
        assert late.finished  # drains nothing but must not hang a server
        assert late.pop_window() is None


class TestBackpressure:
    def test_slow_subscriber_coalesces_while_fast_peer_stays_gapless(self):
        seconds = 40
        messages, expect = striped_feed(seconds=seconds, nets=("10.1", "10.2"))
        hub = live_hub(messages)
        fast = hub.subscribe(FilterSet(), max_queued_windows=1000)
        slow = hub.subscribe(FilterSet(), max_queued_windows=3, coalesce_budget=6)
        # Nobody pops while the feed runs: the decode loop must still finish
        # (bounded queues coalesce/drop — they never block the bridge).
        hub.run()
        assert hub.finished

        fast_prefixes, fast_times, fast_windows = delivered(fast)
        assert len(fast_windows) == seconds  # one per feed second, gapless
        assert not any(w.has_gap or w.coalesced for w in fast_windows)
        assert fast_times == sorted(fast_times)
        assert len(fast_prefixes) == len(messages)

        slow_prefixes, _, slow_windows = delivered(slow)
        assert len(slow_windows) <= 3  # the bound held
        assert any(w.coalesced for w in slow_windows)
        assert any(w.has_gap for w in slow_windows)
        # Exact accounting: every matched elem was either delivered or
        # recorded in a gap marker — nothing vanished silently.
        snap = slow.snapshot()
        assert snap["elems_matched"] == len(messages)
        assert len(slow_prefixes) + sum(w.dropped_elems for w in slow_windows) == len(
            messages
        )
        assert snap["elems_dropped"] == sum(w.dropped_elems for w in slow_windows)
        # Truncation always sheds the *oldest* elems: what survives is the
        # most recent tail of the feed, still in timestamp order.
        assert slow_prefixes == fast_prefixes[-len(slow_prefixes):]

    def test_whole_window_drop_records_gap_on_successor(self):
        subscriber = Subscriber(max_queued_windows=1, coalesce_budget=1)
        for second in range(4):
            window = GatewayWindow(second, second + 1)
            window.elems = [object()]
            subscriber._push(window)
        # Budget 1 leaves no room to coalesce: three oldest windows dropped
        # wholly, the survivor carries the gap.
        assert subscriber.ready_count == 1
        survivor = subscriber.pop_window()
        assert survivor.gap_before == 3
        assert survivor.dropped_elems == 3
        assert survivor.has_gap
        assert subscriber.snapshot()["windows_dropped"] == 3

    def test_coalesced_window_widens_span_and_counts_merges(self):
        subscriber = Subscriber(max_queued_windows=1, coalesce_budget=100)
        for second in range(3):
            window = GatewayWindow(second, second + 1)
            window.elems = [second]
            subscriber._push(window)
        merged = subscriber.pop_window()
        assert (merged.start, merged.end) == (0, 3)
        assert merged.elems == [0, 1, 2]
        assert merged.coalesced == 2
        assert not merged.has_gap  # coalescing alone loses nothing


class TestSubscriberUnit:
    def elems(self, seconds=10, net="10.1"):
        messages = [
            make_update(65001, f"{net}.{i}.0/24", BASE_TS + i) for i in range(seconds)
        ]
        stream = BGPStream(
            live=LiveDataInterface(
                broker=publish_feed(messages), max_empty_polls=1, poll_interval=0.0
            )
        )
        return [elem for _, elem in stream.elems()]

    def test_event_time_windows_bin_by_elem_time(self):
        subscriber = Subscriber(window_size=4)
        for elem in self.elems(seconds=10):
            assert subscriber.offer(elem)
        subscriber.flush(finished=True)
        windows = subscriber.drain()
        assert [w.end - w.start for w in windows] == [4, 4, 4]
        assert [len(w.elems) for w in windows] == [4, 4, 2]
        for window in windows:
            assert all(window.start <= int(e.time) < window.end for e in window.elems)

    def test_multiplexing_add_remove_filter_mid_stream(self):
        subscriber = Subscriber(FilterSet().add("prefix", "10.1.0.0/16"))
        elems = self.elems(seconds=6)
        for elem in elems[:2]:
            assert subscriber.offer(elem)
        subscriber.add_filter("peer-asn", "65002")  # now requires both
        for elem in elems[2:4]:
            assert not subscriber.offer(elem)  # peer is 65001
        subscriber.remove_filter("peer-asn", "65002")
        for elem in elems[4:]:
            assert subscriber.offer(elem)
        subscriber.flush(finished=True)
        prefixes = [str(e.prefix) for w in subscriber.drain() for e in w.elems]
        assert prefixes == ["10.1.0.0/24", "10.1.1.0/24", "10.1.4.0/24", "10.1.5.0/24"]

    def test_set_interval_bounds_delivery(self):
        subscriber = Subscriber()
        subscriber.set_interval(BASE_TS + 2, BASE_TS + 4)
        offered = [subscriber.offer(elem) for elem in self.elems(seconds=8)]
        assert offered == [False, False, True, True, True, False, False, False]

    def test_notifier_fires_on_window_close_and_finish(self):
        fired = []
        subscriber = Subscriber(window_size=1)
        subscriber.set_notifier(lambda: fired.append(len(fired)))
        elems = self.elems(seconds=3)
        for elem in elems:
            subscriber.offer(elem)
        assert len(fired) == 2  # two closed windows; the third is still open
        subscriber.flush(finished=True)
        assert len(fired) == 3
        # A notifier registered late (windows already pending) fires at once.
        other = Subscriber(window_size=1)
        for elem in elems:
            other.offer(elem)
        late = []
        other.set_notifier(lambda: late.append(True))
        assert late == [True]

    def test_offer_is_safe_against_concurrent_multiplexing(self):
        subscriber = Subscriber(FilterSet().add("prefix", "10.1.0.0/16"))
        elems = self.elems(seconds=10) * 50
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                subscriber.add_filter("peer-asn", "65002")
                subscriber.remove_filter("peer-asn", "65002")

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            matched = sum(1 for elem in elems if subscriber.offer(elem))
        finally:
            stop.set()
            thread.join()
        subscriber.flush(finished=True)
        assert matched == sum(len(w.elems) for w in subscriber.drain())

    def test_constructor_rejects_degenerate_knobs(self):
        with pytest.raises(ValueError):
            Subscriber(window_size=0)
        with pytest.raises(ValueError):
            Subscriber(max_queued_windows=0)


class TestHubLifecycle:
    def test_hub_requires_a_live_stream(self):
        with pytest.raises(ValueError, match="live"):
            StreamHub(BGPStream())

    def test_unsubscribe_stops_delivery(self):
        messages, _ = striped_feed(seconds=3)
        hub = live_hub(messages)
        subscriber = hub.subscribe(FilterSet())
        hub.unsubscribe(subscriber)
        hub.unsubscribe(subscriber)  # idempotent
        hub.run()
        assert subscriber.snapshot()["elems_matched"] == 0
        assert hub.subscriber_count == 0

    def test_background_start_joins_and_flushes(self):
        messages, _ = striped_feed(seconds=3)
        hub = live_hub(messages)
        subscriber = hub.subscribe(FilterSet())
        hub.start()
        with pytest.raises(RuntimeError):
            hub.start()
        hub.join(timeout=30)
        assert hub.finished and subscriber.finished
        assert subscriber.snapshot()["elems_matched"] == len(messages)
        hub.stop()  # no-op after finish

    def test_stats_report_fanout_and_intern_counters(self):
        messages, _ = striped_feed(seconds=3)
        hub = live_hub(messages)
        hub.subscribe(FilterSet())
        hub.run()
        stats = hub.stats()
        assert stats["records_seen"] == len(messages)
        assert stats["elems_seen"] == len(messages)
        assert stats["elems_delivered"] == len(messages)
        assert stats["finished"] is True
        assert stats["frames_decoded"] == len(messages)
        assert stats["corrupt_frames"] == 0
        assert stats["intern"]  # the shared pool saw traffic
