"""End-to-end /metrics: every tier shows up in one gateway scrape.

The acceptance test of the unified telemetry tier: with metrics enabled, a
live feed decodes through the hub, a broker client pulls pages through a
segment-cached reader path, a retry and a breaker trip fire — then one
``GET /metrics`` over a real socket must return valid Prometheus text
exposition carrying at least one metric from each tier (decode, intern,
broker, segment cache, kafka, resilience, hub).
"""

from __future__ import annotations

import asyncio
import gc
import json
import re

from repro.core import metrics, profiling
from repro.core.resilience import RetryPolicy
from repro.gateway.server import GatewayServer

from test_server import open_client
from test_hub import BASE_TS, live_hub, make_update, striped_feed

TIMEOUT = 30

#: One representative metric per tier the acceptance criterion names.
TIER_METRICS = {
    "decode": "repro_decode_records_scanned_total",
    "intern": "repro_intern_operations_total",
    "broker": "repro_broker_requests_total",
    "segment cache": "repro_segment_cache_events_total",
    "kafka": "repro_kafka_poll_latency_seconds",
    "resilience": "repro_resilience_retry_attempts_total",
    "hub": "repro_hub_records_total",
}

SAMPLE_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (?:[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)


def exercise_other_tiers(tmp_path):
    """Touch the broker, segment-cache and resilience tiers directly."""
    from repro.broker.client import BrokerClient, BrokerRequestError
    from repro.broker.segments import SegmentCache

    # Broker tier: one request that fails transiently once, then succeeds —
    # also the resilience tier's retry counter.
    class FlakyTransport:
        def __init__(self):
            self.calls = 0

        def get_window(self, query, cursor, page_size, now, from_time=None):
            self.calls += 1
            if self.calls == 1:
                raise BrokerRequestError("injected")

            class Page:
                files = []
                next_cursor = None

            return Page()

    client = BrokerClient(
        transport=FlakyTransport(),
        retry_policy=RetryPolicy(max_retries=2, base=0.0),
    )
    list(client.iter_pages(None))

    # Segment-cache tier: one miss.
    cache = SegmentCache(str(tmp_path / "segcache"))

    class Spec:
        path = str(tmp_path / "never-stored.mrt")
        project = collector = dump_type = "x"
        timestamp = 0

    assert cache.load(Spec()) is None


class TestMetricsEndpoint:
    def test_gateway_scrape_covers_every_tier(self, tmp_path):
        # Hub/gateway families are bridged from *live* instances; reap any
        # hubs earlier tests left in reference cycles so they don't sum in.
        gc.collect()
        messages, _ = striped_feed(seconds=6, nets=("10.1", "10.2"))
        metrics.enable()
        profiling.enable()
        try:
            hub = live_hub(messages)
            hub.run()  # decode the whole feed through the kafka source
            exercise_other_tiers(tmp_path)

            async def scenario():
                server = await GatewayServer(hub).start()
                try:
                    reader, writer = await open_client(server.port)
                    writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                    await writer.drain()
                    return await reader.read()
                finally:
                    await server.close()

            response = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
        finally:
            profiling.disable()
            metrics.disable()

        head, _, body_bytes = response.partition(b"\r\n\r\n")
        assert b"200 OK" in head
        assert b"text/plain; version=0.0.4" in head
        body = body_bytes.decode("utf-8")

        # Valid exposition: every non-comment line is a well-formed sample.
        for line in body.splitlines():
            assert line, "blank line in exposition"
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert SAMPLE_LINE_RE.match(line), f"malformed sample line: {line!r}"

        # At least one metric from each tier, as the issue demands.
        for tier, name in TIER_METRICS.items():
            assert f"# TYPE {name}" in body, f"{tier} tier missing ({name})"

        # And the pipeline actually flowed: nonzero hub + kafka + decode
        # + intern + broker + resilience + cache samples.
        def sample(pattern):
            match = re.search(pattern, body, flags=re.MULTILINE)
            assert match is not None, f"no sample matched {pattern!r}"
            return float(match.group(1))

        assert sample(r"^repro_hub_records_total (\d+)$") >= len(messages)
        assert sample(r'^repro_hub_elems_total\{kind="seen"\} (\d+)$') >= len(messages)
        assert sample(r"^repro_kafka_frames_total\{status=\"ok\"\} (\d+)$") == len(messages)
        assert sample(r"^repro_kafka_poll_latency_seconds_count (\d+)$") > 0
        assert sample(r"^repro_decode_bmp_frames_scanned_total (\d+)$") > 0
        assert re.search(r"^repro_intern_operations_total\{", body, flags=re.MULTILINE)
        assert sample(r'^repro_broker_requests_total\{method="get_window"\} (\d+)$') == 2
        assert sample(r"^repro_broker_retries_total (\d+)$") == 1
        assert sample(r"^repro_resilience_retry_attempts_total (\d+)$") >= 1
        assert sample(r'^repro_segment_cache_events_total\{event="miss"\} (\d+)$') == 1
        assert sample(r'^repro_stage_latency_seconds_count\{stage="poll"\} (\d+)$') > 0
        assert sample(r'^repro_stage_latency_seconds_count\{stage="fanout"\} (\d+)$') > 0

    def test_metrics_endpoint_serves_zeros_when_disabled(self):
        hub = live_hub([make_update(65001, "10.1.0.0/24", BASE_TS)])

        async def scenario():
            server = await GatewayServer(hub).start()
            try:
                reader, writer = await open_client(server.port)
                writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                return await reader.read()
            finally:
                await server.close()

        response = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
        body = response.partition(b"\r\n\r\n")[2].decode("utf-8")
        # Disabled metrics still scrape cleanly — families render (with
        # whatever bridged state exists), no errors, valid content type.
        assert b"200 OK" in response
        assert "# TYPE repro_hub_records_total counter" in body

    def test_stats_gains_uptime_and_session_depths(self):
        messages, _ = striped_feed(seconds=3, nets=("10.1",))
        hub = live_hub(messages)

        async def scenario():
            server = await GatewayServer(hub).start()
            try:
                # A durable session subscriber, still attached (feed not yet
                # started, so the session is live when /stats is sampled).
                sse_reader, sse_writer = await open_client(server.port)
                sse_writer.write(
                    b"GET /stream/sse?session=abc&window=1 HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                await sse_writer.drain()
                head = await sse_reader.readuntil(b"\r\n\r\n")
                assert b"200 OK" in head
                while hub.subscriber_count < 1:
                    await asyncio.sleep(0.005)

                reader, writer = await open_client(server.port)
                writer.write(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                response = await reader.read()
                sse_writer.close()
                return response
            finally:
                await server.close()

        response = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
        body = json.loads(response.split(b"\r\n\r\n", 1)[1])
        server_stats = body["server"]
        # Existing keys stay stable...
        assert set(server_stats) >= {"connections_served", "sessions", "sessions_reaped"}
        # ...and the new surface rides along.
        assert server_stats["uptime_seconds"] >= 0
        detail = server_stats["session_detail"]
        assert "abc" in detail
        assert set(detail["abc"]) == {"attached", "queued_windows", "unacked_windows"}
        assert detail["abc"]["attached"] is True
        assert detail["abc"]["queued_windows"] == 0
        assert detail["abc"]["unacked_windows"] == 0
