"""The gateway wire layer: HTTP head parsing, SSE framing, RFC 6455 codec."""

from __future__ import annotations

import json

import pytest

from repro.gateway.protocol import (
    OP_BINARY,
    OP_CLOSE,
    OP_PING,
    OP_TEXT,
    WSFrameParser,
    dumps,
    encode_ws_frame,
    http_response,
    parse_http_request,
    sse_event,
    sse_preamble,
    websocket_accept,
    websocket_handshake_response,
)
from repro.gateway.server import subscription_from_query


class TestHTTP:
    def test_request_head_parses_target_and_headers(self):
        head = (
            b"GET /stream/sse?prefix=10.0.0.0%2F8&prefix=10.1.0.0/16&window=5 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Sec-WebSocket-Key:  abc==  \r\n\r\n"
        )
        request = parse_http_request(head)
        assert request.method == "GET"
        assert request.path == "/stream/sse"
        # Repeats preserved in order; percent-encoding decoded.
        assert request.query == [
            ("prefix", "10.0.0.0/8"),
            ("prefix", "10.1.0.0/16"),
            ("window", "5"),
        ]
        assert request.header("SEC-WEBSOCKET-KEY") == "abc=="
        assert request.header("absent", "fallback") == "fallback"

    def test_malformed_request_line_is_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_http_request(b"NONSENSE\r\n\r\n")

    def test_response_carries_content_length(self):
        body = b'{"ok":true}'
        response = http_response("200 OK", body)
        head, _, got = response.partition(b"\r\n\r\n")
        assert got == body
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Content-Type: application/json" in head


class TestSSE:
    def test_preamble_is_an_event_stream(self):
        assert b"Content-Type: text/event-stream" in sse_preamble()

    def test_event_frames_json_payload(self):
        frame = sse_event({"b": 2, "a": 1}, event="window")
        assert frame == b'event: window\ndata: {"a":1,"b":2}\n\n'
        assert json.loads(frame.split(b"data: ")[1]) == {"a": 1, "b": 2}

    def test_event_without_name_has_data_only(self):
        assert sse_event({"x": 1}) == b'data: {"x":1}\n\n'


class TestWebSocketHandshake:
    def test_accept_matches_the_rfc6455_worked_example(self):
        # RFC 6455 §1.3's sample nonce and its published accept value.
        key = "dGhlIHNhbXBsZSBub25jZQ=="
        assert websocket_accept(key) == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    def test_handshake_response_echoes_the_accept(self):
        request = parse_http_request(
            b"GET /stream/ws HTTP/1.1\r\n"
            b"Upgrade: websocket\r\n"
            b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n"
        )
        response = websocket_handshake_response(request)
        assert response.startswith(b"HTTP/1.1 101 Switching Protocols\r\n")
        assert b"Sec-WebSocket-Accept: s3pPLMBiTxaQ9kYGzzhZRbK+xOo=\r\n" in response

    def test_handshake_without_key_is_rejected(self):
        request = parse_http_request(b"GET /stream/ws HTTP/1.1\r\n\r\n")
        with pytest.raises(ValueError, match="Sec-WebSocket-Key"):
            websocket_handshake_response(request)


class TestWSFrameCodec:
    @pytest.mark.parametrize("mask", [False, True])
    @pytest.mark.parametrize(
        "size",
        [0, 1, 125, 126, 127, 1000, 65535, 65536, 70000],  # all three length forms
    )
    def test_round_trip_across_length_encodings(self, size, mask):
        payload = bytes(i % 251 for i in range(size))
        wire = encode_ws_frame(payload, OP_BINARY, mask=mask)
        assert WSFrameParser().feed(wire) == [(OP_BINARY, payload)]

    def test_incremental_feed_one_byte_at_a_time(self):
        payload = b"x" * 300  # 16-bit length form
        wire = encode_ws_frame(payload, OP_TEXT, mask=True)
        parser = WSFrameParser()
        frames = []
        for i in range(len(wire)):
            frames.extend(parser.feed(wire[i : i + 1]))
        assert frames == [(OP_TEXT, payload)]

    def test_coalesced_frames_all_come_out(self):
        wire = (
            encode_ws_frame(b"one", OP_TEXT)
            + encode_ws_frame(b"", OP_PING)
            + encode_ws_frame(b"two", OP_TEXT, mask=True)
            + encode_ws_frame(b"", OP_CLOSE)
        )
        assert WSFrameParser().feed(wire) == [
            (OP_TEXT, b"one"),
            (OP_PING, b""),
            (OP_TEXT, b"two"),
            (OP_CLOSE, b""),
        ]

    def test_fragmented_message_reassembles_around_control_frames(self):
        # FIN=0 text fragment, an interleaved ping, then a FIN=1 continuation.
        first = bytearray(encode_ws_frame(b"hel", OP_TEXT))
        first[0] &= 0x7F  # clear FIN
        ping = encode_ws_frame(b"hb", OP_PING)
        final = bytearray(encode_ws_frame(b"lo", OP_TEXT))
        final[0] = 0x80  # FIN=1, opcode=0 (continuation)
        frames = WSFrameParser().feed(bytes(first) + ping + bytes(final))
        assert frames == [(OP_PING, b"hb"), (OP_TEXT, b"hello")]

    def test_masked_payload_differs_on_the_wire(self):
        payload = b"secretish"
        masked = encode_ws_frame(payload, OP_TEXT, mask=True)
        assert payload not in masked  # actually masked
        assert WSFrameParser().feed(masked) == [(OP_TEXT, payload)]


class TestSubscriptionQuery:
    def test_filters_and_knobs_parse_together(self):
        filters, knobs = subscription_from_query(
            [
                ("prefix", "10.0.0.0/8"),
                ("peer-asn", "65001"),
                ("window", "5"),
                ("max-queued", "2"),
                ("coalesce-budget", "10"),
                ("name", "dashboard"),
                ("interval", "100,200"),
            ]
        )
        assert filters.peer_asns == {65001}
        assert (filters.interval_start, filters.interval_end) == (100, 200)
        assert knobs == {
            "window_size": 5,
            "max_queued_windows": 2,
            "coalesce_budget": 10,
            "name": "dashboard",
        }

    def test_open_ended_interval_is_live(self):
        filters, _ = subscription_from_query([("interval", "100,-1")])
        assert filters.interval_start == 100
        assert filters.interval_end is None
        assert filters.live

    def test_defaults_apply_without_parameters(self):
        filters, knobs = subscription_from_query([])
        assert knobs["window_size"] >= 1
        assert filters.peer_asns == set()

    def test_unknown_parameter_is_rejected(self):
        with pytest.raises(ValueError, match="unknown query parameter"):
            subscription_from_query([("bogus", "1")])

    def test_repeated_filter_values_accumulate(self):
        filters, _ = subscription_from_query(
            [("peer-asn", "65001"), ("peer-asn", "65002")]
        )
        assert filters.peer_asns == {65001, 65002}

    def test_sorted_compact_json_shape(self):
        assert dumps({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'
