"""Chaos equivalence: injected faults never silently change the stream.

ISSUE 9 capstone.  Every test replays a recorded scenario twice — once
fault-free, once with scripted faults injected through
:mod:`repro.core.resilience` — and asserts the surviving end-to-end elem
sequence is *exactly* the fault-free sequence modulo explicitly marked
gaps:

* transient Kafka-consumer faults absorbed by the poll retry policy →
  byte-for-byte equivalence, zero markers;
* broker-transport faults absorbed by the client retry policy → the same
  paginated file list;
* corrupted BMP frames → the fault-free sequence minus exactly the
  corrupted frames' elems, with the corruption *counted*, never silent;
* non-transient bridge crashes → supervised restarts resume from the
  consumer group's committed offsets: equivalence modulo ``crash_before``
  markers, no loss, no duplicates;
* and the acceptance run: a real SSE client that reconnects with its
  resume token across a forced hub restart misses nothing it had not
  already acked.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.bmp import BMPFeedProducer
from repro.bmp.source import BMPKafkaDataSource
from repro.broker.broker import Broker, BrokerQuery
from repro.broker.client import BrokerClient, BrokerRequestError, LocalBrokerTransport
from repro.broker.db import DumpFileRecord, MetadataDB
from repro.core.interfaces import LiveDataInterface
from repro.core.resilience import FaultPlan, RetryPolicy, inject_faults
from repro.core.stream import BGPStream
from repro.gateway.hub import StreamHub
from repro.gateway.server import GatewayServer
from repro.kafka.broker import MessageBroker
from repro.utils.timeutil import SimulatedClock

from test_hub import BASE_TS, delivered, make_update, publish_feed, striped_feed

TOPIC = "openbmp.bmp_raw"
TIMEOUT = 30  # generous outer bound; everything real finishes in seconds


def run_hub(broker, *, plans=(), group="chaos", retry_policy=None, max_restarts=8):
    """Run a (possibly fault-injected, supervised) hub over ``broker``.

    ``plans`` stack outermost-first: each wraps the source's ``poll`` with
    its own scripted faults, so one run can combine transient faults (to
    be absorbed by ``retry_policy``) with non-transient crashes (to be
    absorbed by the supervisor).  Returns the drained subscriber triple
    from :func:`delivered` plus the hub.
    """

    def stream_factory() -> BGPStream:
        source = BMPKafkaDataSource(broker, topics=[TOPIC], group=group)
        for plan in reversed(plans):
            source = inject_faults(source, plan, ["poll"])
        interface = LiveDataInterface(
            source=source,
            max_empty_polls=2,
            poll_interval=0.0,
            retry_policy=retry_policy,
            clock=SimulatedClock(0.0),
        )
        return BGPStream(data_interface=interface)

    hub = StreamHub(
        stream_factory=stream_factory,
        max_restarts=max_restarts,
        restart_backoff=RetryPolicy(max_retries=max_restarts, base=0.0),
        clock=SimulatedClock(0.0),
    )
    subscriber = hub.subscribe(max_queued_windows=64)
    hub.run()
    prefixes, times, windows = delivered(subscriber)
    return prefixes, times, windows, hub


class TestConsumerFaultEquivalence:
    def test_transient_consumer_faults_leave_the_sequence_untouched(self):
        messages, _ = striped_feed(seconds=8, nets=("10.1", "10.2"))
        reference, ref_times, _, _ = run_hub(publish_feed(messages), group="chaos.ref")

        plan = FaultPlan(fail_at=(0, 1, 3))  # InjectedFault is transient
        prefixes, times, windows, hub = run_hub(
            publish_feed(messages),
            plans=(plan,),
            group="chaos.transient",
            retry_policy=RetryPolicy(max_retries=4, base=0.0),
        )
        assert prefixes == reference  # exact: no loss, no duplicates
        assert times == ref_times
        assert plan.injected == 3
        assert hub.crashes == 0  # absorbed below the supervisor
        assert sum(w.crash_before for w in windows) == 0

    def test_crash_faults_are_equivalent_modulo_crash_markers(self):
        messages, _ = striped_feed(seconds=10, nets=("10.1", "10.2"))
        reference, ref_times, _, _ = run_hub(publish_feed(messages), group="chaos.ref2")

        transient = FaultPlan(fail_at=(0,))
        crashes = FaultPlan(fail_at=(1, 3), error=RuntimeError)
        prefixes, times, windows, hub = run_hub(
            publish_feed(messages),
            plans=(crashes, transient),  # crash plan guards the retry loop too
            group="chaos.crashes",
            retry_policy=RetryPolicy(max_retries=4, base=0.0),
        )
        assert prefixes == reference  # committed offsets are the resume point
        assert times == ref_times
        assert len(prefixes) == len(set(prefixes))  # nothing re-delivered
        assert crashes.injected == 2 and transient.injected == 1
        assert hub.crashes == 2 and hub.restarts == 2 and not hub.gave_up
        assert sum(w.crash_before for w in windows) == 2  # marked, never silent


class TestBrokerTransportEquivalence:
    @staticmethod
    def _broker(n=20):
        db = MetadataDB()
        for i in range(n):
            db.insert(
                DumpFileRecord(
                    "ris", "rrc0", "updates", i * 900, 900,
                    f"/a/rrc0/{i * 900}.mrt.gz", i * 900 + 960,
                )
            )
        return Broker(db=db, window_span=7200)

    def test_flaky_transport_serves_the_same_paginated_file_list(self):
        broker = self._broker(20)
        query = BrokerQuery(interval_start=0, interval_end=20 * 900)
        reference = [f.path for f in BrokerClient(broker, page_size=3).iter_files(query)]

        plan = FaultPlan(fail_at=(0, 2, 3), error=BrokerRequestError)
        client = BrokerClient(
            transport=inject_faults(
                LocalBrokerTransport(broker), plan, ["get_window", "get_new_files_page"]
            ),
            page_size=3,
            clock=SimulatedClock(0.0),
        )
        assert [f.path for f in client.iter_files(query)] == reference
        assert plan.injected == 3
        assert client.retries == 3  # absorbed by the shared RetryPolicy


class TestFrameCorruptionEquivalence:
    def test_corrupt_frames_cost_exactly_their_own_elems_and_are_counted(self):
        messages, _ = striped_feed(seconds=10, nets=("10.1",))
        reference, _, _, _ = run_hub(publish_feed(messages), group="chaos.ref3")

        corrupt_at = {3, 7}
        broker = MessageBroker()
        producer = BMPFeedProducer(broker, router="rtr1.gw")
        for i, message in enumerate(messages):
            raw = bytearray(message.encode())
            if i in corrupt_at:
                raw[5] = 0xEE  # msg-type byte: framing survives, body does not
            producer.publish(bytes(raw))

        prefixes, times, windows, hub = run_hub(broker, group="chaos.corrupt")
        lost = {f"10.1.{i}.0/24" for i in corrupt_at}
        assert prefixes == [p for p in reference if p not in lost]
        assert times == sorted(times)
        stats = hub.stats()
        assert stats["corrupt_frames"] == len(corrupt_at)  # signalled per frame
        assert stats["frames_decoded"] == len(messages) - len(corrupt_at)
        assert hub.crashes == 0  # corruption is data, not a bridge failure


async def open_client(port):
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setblocking(False)
    loop = asyncio.get_running_loop()
    await loop.sock_connect(sock, ("127.0.0.1", port))
    return await asyncio.open_connection(sock=sock)


async def read_event(reader):
    """One SSE event as ``(event_id, payload)``; heartbeat comments skipped."""
    event_id, payload = None, None
    while True:
        line = await reader.readline()
        if not line:
            return None, None
        if line in (b"\n", b"\r\n"):
            if payload is not None:
                return event_id, payload
            event_id = None  # a heartbeat comment frame: keep reading
        elif line.startswith(b"id: "):
            event_id = line[4:].strip().decode()
        elif line.startswith(b"data: "):
            payload = json.loads(line[6:])


class TestReconnectAcrossHubRestart:
    def test_sse_client_resumes_with_cursor_across_a_forced_restart(self):
        """The acceptance run: connect, ack three windows by carrying their
        resume token, vanish; the bridge is crashed and restarted while the
        client is away; reconnecting with the token replays everything from
        the first unacked boundary — no loss, no duplicates, one marker."""
        part1 = [make_update(65001, f"10.1.{i}.0/24", BASE_TS + i) for i in range(6)]
        part2 = [make_update(65001, f"10.1.{i}.0/24", BASE_TS + i) for i in range(6, 12)]
        broker = MessageBroker()
        producer = BMPFeedProducer(broker, router="rtr1.gw")
        for message in part1:
            producer.publish(message)

        plan = FaultPlan()
        config = {"max_empty_polls": None}  # incarnation 1 polls forever

        def stream_factory() -> BGPStream:
            source = BMPKafkaDataSource(broker, topics=[TOPIC], group="reconnect.e2e")
            return BGPStream(
                data_interface=LiveDataInterface(
                    source=inject_faults(source, plan, ["poll"]),
                    max_empty_polls=config["max_empty_polls"],
                    poll_interval=0.002,
                )
            )

        hub = StreamHub(stream_factory=stream_factory, max_restarts=8)

        async def scenario():
            server = await GatewayServer(
                hub, heartbeat_interval=0.05, session_ttl=30.0
            ).start()
            try:
                # -- leg one: a durable session reads three windows, then
                # vanishes without closing cleanly.
                reader, writer = await open_client(server.port)
                writer.write(
                    b"GET /stream/sse?session=alpha&window=1&max-queued=64"
                    b" HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                await writer.drain()
                assert b"200 OK" in await reader.readuntil(b"\r\n\r\n")
                while hub.subscriber_count < 1:
                    await asyncio.sleep(0.005)
                hub.start()
                tokens, first_leg = [], []
                while len(first_leg) < 3:
                    event_id, payload = await read_event(reader)
                    assert payload["type"] == "window"
                    assert payload["resume"] == event_id  # the cursor rides the id: line
                    tokens.append(event_id)
                    first_leg.extend(e["fields"]["prefix"] for e in payload["elems"])
                writer.close()

                # Failing heartbeats surface the dead connection; the
                # session parks with its unacked windows retained.
                while (
                    "alpha" not in server._sessions
                    or server._sessions["alpha"].attached
                ):
                    await asyncio.sleep(0.01)

                # -- crash the bridge while the client is away.  The
                # rebuilt incarnation gets a finite idle budget so the
                # feed can end once part two drains.
                config["max_empty_polls"] = 400
                plan.error = RuntimeError
                plan.fail_at = frozenset({plan.calls + 2})
                while hub.restarts < 1:
                    await asyncio.sleep(0.01)
                for message in part2:
                    producer.publish(message)

                # -- leg two: reconnect with the last token seen.
                reader2, writer2 = await open_client(server.port)
                writer2.write(
                    f"GET /stream/sse?resume={tokens[-1]} HTTP/1.1\r\n"
                    f"Host: x\r\n\r\n".encode()
                )
                await writer2.drain()
                assert b"200 OK" in await reader2.readuntil(b"\r\n\r\n")
                second_leg, markers = [], 0
                while True:
                    _event_id, payload = await read_event(reader2)
                    if payload["type"] != "window":
                        final = payload
                        break
                    markers += payload.get("crash_before", 0)
                    second_leg.extend(e["fields"]["prefix"] for e in payload["elems"])
                writer2.close()
                return first_leg, second_leg, markers, final
            finally:
                await server.close()

        first_leg, second_leg, markers, final = asyncio.run(
            asyncio.wait_for(scenario(), TIMEOUT)
        )
        assert first_leg == [f"10.1.{i}.0/24" for i in range(3)]
        # Replay starts at the first boundary the client never acked:
        # windows 3-4 were in flight when it vanished, 5-11 arrived later.
        assert second_leg == [f"10.1.{i}.0/24" for i in range(3, 12)]
        assert markers == 1  # the restart is visible exactly once
        assert final["type"] == "end"  # recovered: a clean end ...
        assert final.get("crashes") == 1  # ... that still discloses the crash
        assert hub.crashes == 1 and hub.restarts == 1 and not hub.gave_up
