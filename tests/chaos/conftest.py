"""Make the gateway test helpers (``test_hub`` etc.) importable here."""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "gateway"))
