"""tools/check_metrics.py: the registry linter passes on the real tree and
catches planted violations in its exposition smoke-parser."""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load(name, relpath):
    spec = importlib.util.spec_from_file_location(name, REPO_ROOT / relpath)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


check_metrics = _load("check_metrics", "tools/check_metrics.py")


class TestCheckRegistry:
    def test_real_registry_is_clean(self):
        assert check_metrics.check_registry() == []

    def test_cli_exits_zero(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_metrics.py")],
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "metric families ok" in result.stdout


class TestExpositionParser:
    def test_clean_exposition_passes(self):
        text = (
            "# HELP x_total Things.\n"
            "# TYPE x_total counter\n"
            'x_total{kind="a"} 3\n'
        )
        assert check_metrics.check_exposition(text) == []

    def test_blank_line_flagged(self):
        problems = check_metrics.check_exposition("x_total 1\n\ny_total 2\n")
        assert any("blank line" in p for p in problems)

    def test_malformed_sample_flagged(self):
        problems = check_metrics.check_exposition("not a sample line\n")
        assert any("malformed sample" in p for p in problems)

    def test_unknown_comment_flagged(self):
        problems = check_metrics.check_exposition("# WAT x_total counter\n")
        assert any("unknown comment" in p for p in problems)

    def test_missing_trailing_newline_flagged(self):
        problems = check_metrics.check_exposition("x_total 1")
        assert any("newline" in p for p in problems)
