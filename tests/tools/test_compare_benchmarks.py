"""The benchmark-regression gate tolerates additions, retirements and junk.

PR 10 adds a brand-new benchmark file; the gate must report it as "new
benchmark, no baseline" and exit 0 rather than KeyError on the missing
baseline entry.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load(name, relpath):
    spec = importlib.util.spec_from_file_location(name, REPO_ROOT / relpath)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


compare_benchmarks = _load("compare_benchmarks", "benchmarks/compare_benchmarks.py")


def bench_json(tmp_path, name, entries):
    path = tmp_path / name
    path.write_text(json.dumps({"benchmarks": entries}))
    return str(path)


def entry(fullname, median):
    return {"fullname": fullname, "stats": {"median": median}}


class TestLoadMedians:
    def test_reads_fullname_to_median(self, tmp_path):
        path = bench_json(tmp_path, "run.json", [entry("a.py::test_a", 0.5)])
        assert compare_benchmarks.load_medians(path) == {"a.py::test_a": 0.5}

    def test_malformed_entries_are_skipped_not_fatal(self, tmp_path):
        path = bench_json(
            tmp_path,
            "run.json",
            [
                entry("good", 1.0),
                {"stats": {"median": 2.0}},  # no fullname
                {"fullname": "no-stats"},  # no stats at all
                {"fullname": "no-median", "stats": {}},  # stats but no median
            ],
        )
        assert compare_benchmarks.load_medians(path) == {"good": 1.0}

    def test_empty_file_yields_empty_dict(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        assert compare_benchmarks.load_medians(str(path)) == {}


class TestCompare:
    def test_new_benchmark_without_baseline_passes(self, tmp_path, capsys):
        baseline = bench_json(tmp_path, "base.json", [entry("old", 1.0)])
        current = bench_json(
            tmp_path, "cur.json", [entry("old", 1.0), entry("brand_new", 9.9)]
        )
        rc = compare_benchmarks.main([baseline, current])
        out = capsys.readouterr().out
        assert rc == 0
        assert "new benchmark, no baseline" in out

    def test_retired_benchmark_passes(self, tmp_path, capsys):
        baseline = bench_json(
            tmp_path, "base.json", [entry("kept", 1.0), entry("retired", 1.0)]
        )
        current = bench_json(tmp_path, "cur.json", [entry("kept", 1.0)])
        rc = compare_benchmarks.main([baseline, current])
        out = capsys.readouterr().out
        assert rc == 0
        assert "not run" in out

    def test_regression_fails_the_gate(self, tmp_path, capsys):
        baseline = bench_json(tmp_path, "base.json", [entry("slow", 1.0)])
        current = bench_json(tmp_path, "cur.json", [entry("slow", 3.0)])
        rc = compare_benchmarks.main([baseline, current, "--max-ratio", "2.0"])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_within_ratio_passes(self, tmp_path, capsys):
        baseline = bench_json(tmp_path, "base.json", [entry("fine", 1.0)])
        current = bench_json(tmp_path, "cur.json", [entry("fine", 1.5)])
        rc = compare_benchmarks.main([baseline, current, "--max-ratio", "2.0"])
        assert rc == 0
        assert "no benchmark regressions" in capsys.readouterr().out

    def test_pattern_selects_subset(self, tmp_path, capsys):
        baseline = bench_json(
            tmp_path, "base.json", [entry("trie::a", 1.0), entry("other::b", 1.0)]
        )
        current = bench_json(
            tmp_path, "cur.json", [entry("trie::a", 1.0), entry("other::b", 99.0)]
        )
        rc = compare_benchmarks.main([baseline, current, "--pattern", "trie"])
        out = capsys.readouterr().out
        assert rc == 0  # the 99x regression is outside the pattern
        assert "other::b" not in out

    def test_no_matching_benchmarks_is_an_error(self, tmp_path):
        baseline = bench_json(tmp_path, "base.json", [entry("a", 1.0)])
        current = bench_json(tmp_path, "cur.json", [entry("a", 1.0)])
        rc = compare_benchmarks.main([baseline, current, "--pattern", "nomatch"])
        assert rc == 2
