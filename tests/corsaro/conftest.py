"""Helpers for the BGPCorsaro tests.

The shared ``corsaro_scenario`` / ``corsaro_archive`` fixtures live in the
top-level ``tests/conftest.py`` (they are reused by the monitoring tests).
"""

from __future__ import annotations

from repro.broker.broker import Broker
from repro.collectors.archive import Archive
from repro.core.interfaces import BrokerDataInterface
from repro.core.stream import BGPStream


def make_corsaro_stream(archive: Archive, start: int, end: int, **filters) -> BGPStream:
    stream = BGPStream(data_interface=BrokerDataInterface(Broker(archives=[archive])))
    stream.add_interval_filter(start, end)
    for name, values in filters.items():
        for value in values:
            stream.add_filter(name, value)
    return stream
