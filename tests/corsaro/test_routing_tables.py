"""Tests for the routing-tables (RT) plugin: FSM, E1–E4, diffs and accuracy."""

from __future__ import annotations

import os

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.fsm import SessionState
from repro.bgp.prefix import Prefix
from repro.broker.broker import Broker
from repro.collectors.archive import Archive
from repro.core.interfaces import BrokerDataInterface
from repro.core.stream import BGPStream
from repro.corsaro.pipeline import BGPCorsaro
from repro.corsaro.plugins.routing_tables import RoutingTablesPlugin, VPState
from repro.mrt.writer import corrupt_file

from tests.corsaro.conftest import make_corsaro_stream


def _run_rt(archive, start, end, bin_size=300, **kwargs):
    stream = make_corsaro_stream(archive, start, end)
    plugin = RoutingTablesPlugin(**kwargs)
    corsaro = BGPCorsaro(stream, [plugin], bin_size=bin_size)
    corsaro.run()
    outputs = {
        o.interval_start: o.value
        for o in corsaro.outputs_for("routing-tables")
        if o.interval_start >= 0
    }
    return plugin, outputs


class TestRTReconstruction:
    @pytest.fixture(scope="class")
    def rt_run(self, corsaro_archive, corsaro_scenario):
        return _run_rt(corsaro_archive, corsaro_scenario.start, corsaro_scenario.end)

    def test_vps_become_consistent_after_first_rib(self, rt_run, corsaro_scenario):
        plugin, outputs = rt_run
        assert plugin.vps()
        # After the full run, every VP that received a RIB dump should be up.
        up_states = [plugin.vp_state(vp).table_consistent for vp in plugin.vps()]
        assert any(up_states)
        # The first bins (before any RIB completes) have fewer consistent VPs
        # than the last bins.
        series = sorted(outputs.items())
        assert len(series[0][1].consistent_vps) <= len(series[-1][1].consistent_vps)

    def test_reconstructed_tables_match_scenario_ground_truth(
        self, rt_run, corsaro_archive, corsaro_scenario
    ):
        """At the end of the scenario the RT tables equal the VPs' Adj-RIB-out."""
        plugin, _ = rt_run
        scenario = corsaro_scenario
        end = scenario.end
        checked = 0
        for collector in scenario.collectors:
            for vp in collector.vps:
                key = (collector.name, vp.asn, vp.address)
                if not plugin.vp_state(key).table_consistent:
                    continue
                reconstructed = plugin.vp_table(key)
                expected = scenario.table_at(collector, vp, end)
                missing = set(expected) - set(reconstructed)
                extra = set(reconstructed) - set(expected)
                assert not missing, f"missing prefixes for {key}: {sorted(missing)[:5]}"
                assert not extra, f"extra prefixes for {key}: {sorted(extra)[:5]}"
                # AS paths match for every prefix.
                for prefix, cell in reconstructed.items():
                    assert cell.as_path == expected[prefix].as_path
                checked += 1
        assert checked > 0

    def test_diffs_are_fewer_than_elems(self, rt_run, corsaro_scenario):
        """The Figure 9 relationship: redundant updates collapse into fewer diffs.

        The comparison starts after the initial RIB dumps have been applied
        (table bootstrap is not a table-to-table diff in the paper's sense).
        """
        _, outputs = rt_run
        warmup_end = corsaro_scenario.start + 1800
        total_elems = sum(v.elems_processed for ts, v in outputs.items() if ts >= warmup_end)
        total_diffs = sum(v.diff_count for ts, v in outputs.items() if ts >= warmup_end)
        assert total_elems > 0
        assert total_diffs < total_elems

    def test_snapshots_emitted_periodically(self, rt_run):
        _, outputs = rt_run
        snapshot_bins = [ts for ts, v in sorted(outputs.items()) if v.snapshots is not None]
        assert snapshot_bins
        gaps = [b - a for a, b in zip(snapshot_bins, snapshot_bins[1:])]
        assert all(gap >= 3600 for gap in gaps)

    def test_error_probability_is_small(self, rt_run):
        plugin, _ = rt_run
        # The paper reports error probabilities of 1e-8 (RIS) and 1e-5
        # (RouteViews); our simulation has no unresponsive VPs, so the check
        # is simply that comparisons happened and almost all matched.
        assert plugin.compared_prefixes > 0
        assert plugin.error_probability <= 0.01


class TestSnapshotQueries:
    """The trie-indexed lookup(address)/covered(prefix) API over RT snapshots."""

    @pytest.fixture(scope="class")
    def rt_run(self, corsaro_archive, corsaro_scenario):
        return _run_rt(corsaro_archive, corsaro_scenario.start, corsaro_scenario.end)

    def test_plugin_index_longest_prefix_match(self, rt_run):
        plugin, _ = rt_run
        index = plugin.index()
        assert index.vps() == [vp for vp in plugin.vps() if plugin.vp_table(vp)]
        checked = 0
        for vp in index.vps()[:2]:
            table = plugin.vp_table(vp)
            for prefix in list(table)[:25]:
                address = str(prefix.address)
                entries = index.lookup(address, vp=vp)
                assert len(entries) == 1
                entry = entries[0]
                assert entry.vp == vp
                # The oracle: most specific table prefix containing the address.
                query = Prefix.from_address(address, prefix.max_length)
                oracle = max(
                    (p for p in table if p.contains(query)), key=lambda p: p.length
                )
                assert entry.prefix == oracle
                assert entry.cell is table[oracle]
                checked += 1
        assert checked > 0

    def test_plugin_index_covered_matches_bruteforce(self, rt_run):
        plugin, _ = rt_run
        index = plugin.index()
        vp = index.vps()[0]
        table = plugin.vp_table(vp)
        probe = next(iter(table))
        query = Prefix.from_address(str(probe.address), max(0, probe.length - 8))
        got = {(e.vp, e.prefix) for e in index.covered(query, vp=vp)}
        expected = {(vp, p) for p in table if query.contains(p)}
        assert got == expected
        assert (vp, probe) in got

    def test_lookup_across_all_vps(self, rt_run):
        plugin, _ = rt_run
        index = plugin.index()
        vp = index.vps()[0]
        probe = next(iter(plugin.vp_table(vp)))
        entries = index.lookup(str(probe.address))
        assert entries
        # One entry per VP at most, and the per-VP restriction agrees.
        assert len({e.vp for e in entries}) == len(entries)
        for entry in entries:
            assert index.lookup(str(probe.address), vp=entry.vp) == [entry]

    def test_unknown_address_and_vp_return_empty(self, rt_run):
        plugin, _ = rt_run
        index = plugin.index()
        assert index.lookup("255.255.255.254") == []
        assert index.lookup("203.0.113.1", vp=("nope", 0, "0.0.0.0")) == []
        assert index.covered(Prefix.from_string("255.0.0.0/8")) == []

    def test_bin_output_index(self, rt_run):
        _, outputs = rt_run
        snapshot_bin = next(v for _, v in sorted(outputs.items()) if v.snapshots)
        index = snapshot_bin.index()
        vp = index.vps()[0]
        prefix, cell = next(iter(snapshot_bin.snapshots[vp].items()))
        entries = index.lookup(str(prefix.address), vp=vp)
        assert entries and entries[0].prefix.contains(prefix) or entries[0].prefix == prefix
        assert (vp, prefix) in {(e.vp, e.prefix) for e in index.covered(prefix, vp=vp)}
        # Bins without snapshots expose an empty index.
        plain_bin = next(v for _, v in sorted(outputs.items()) if not v.snapshots)
        assert plain_bin.index().vps() == []
        assert plain_bin.index().lookup(str(prefix.address)) == []

    def test_covering_walk(self, rt_run):
        plugin, _ = rt_run
        index = plugin.index()
        vp = index.vps()[0]
        table = plugin.vp_table(vp)
        probe = next(iter(table))
        host = Prefix.from_address(str(probe.address), probe.max_length)
        covering = [e.prefix for e in index.covering(host, vp=vp)]
        assert covering == sorted(
            (p for p in table if p.contains(host)), key=lambda p: -p.length
        )


class TestRTSpecialEvents:
    def test_e4_state_message_forces_down_and_up(self, corsaro_archive, corsaro_scenario):
        """The session reset on rrc0 drives its VP down (E4) and back up."""
        reset = next(
            e for e in corsaro_scenario.timeline.events if type(e).__name__ == "SessionResetEvent"
        )
        plugin, outputs = _run_rt(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end, bin_size=300
        )
        vp_key = next(k for k in plugin.vps() if k[0] == "rrc0" and k[1] == reset.vp_asn)
        down_bin = (reset.interval.start // 300) * 300
        during = outputs[down_bin]
        assert vp_key not in during.consistent_vps
        # Once the session is re-established and the table re-announced, the
        # VP is consistent again by the end of the run.
        final_bin = max(outputs)
        assert vp_key in outputs[final_bin].consistent_vps

    def test_e1_corrupted_rib_dump_is_ignored(self, tmp_path, corsaro_scenario):
        """A truncated RIB dump must not bring VPs up or corrupt tables."""
        scenario = corsaro_scenario
        archive = Archive(str(tmp_path / "archive"))
        files = scenario.generate(archive)
        # Corrupt the first RIS RIB dump on disk.
        rib = next(f for f in files if f.dump_type == "ribs" and f.project == "ris")
        corrupt_file(rib.path, truncate_at=os.path.getsize(rib.path) // 2)

        plugin, outputs = _run_rt(archive, scenario.start, scenario.start + 3600, bin_size=900)
        # VPs of the corrupted collector's dump never became consistent
        # (RIS publishes RIBs every 8h, so there is no second RIB in range).
        ris_vps = [vp for vp in plugin.vps() if vp[0] == rib.collector]
        assert ris_vps
        assert all(not plugin.vp_state(vp).table_consistent for vp in ris_vps)
        # The other collector is unaffected.
        other_vps = [vp for vp in plugin.vps() if vp[0] != rib.collector]
        assert any(plugin.vp_state(vp).table_consistent for vp in other_vps)

    def test_e3_corrupted_updates_freeze_until_next_rib(self, tmp_path, corsaro_scenario):
        scenario = corsaro_scenario
        archive = Archive(str(tmp_path / "archive"))
        files = scenario.generate(archive)
        # Corrupt an early RouteViews updates dump (RV has a RIB every 2h, so
        # a later RIB exists within the scenario to recover from).
        updates = sorted(
            (f for f in files if f.dump_type == "updates" and f.project == "routeviews"),
            key=lambda f: f.timestamp,
        )
        target = updates[1]
        corrupt_file(target.path, truncate_at=40)

        plugin, outputs = _run_rt(archive, scenario.start, scenario.end, bin_size=900)
        rv_vps = [vp for vp in plugin.vps() if vp[0] == target.collector]
        assert rv_vps
        # Immediately after the corruption the VPs are not consistent...
        corruption_bin = (target.timestamp // 900) * 900
        after = outputs[corruption_bin + 900]
        assert all(vp not in after.consistent_vps for vp in rv_vps)
        # ...but the next RIB dump (2h later) restores them.
        final_bin = max(outputs)
        assert any(vp in outputs[final_bin].consistent_vps for vp in rv_vps)


class TestRTStateMachineUnit:
    """Focused FSM checks driven through a tiny hand-built archive."""

    def _make_archive(self, tmp_path, with_state_down=False):
        from repro.bgp.attributes import PathAttributes
        from repro.bgp.message import BGPUpdate
        from repro.mrt.records import BGP4MPMessage, BGP4MPStateChange, PeerEntry
        from repro.mrt.writer import write_rib_dump, write_updates_dump

        archive = Archive(str(tmp_path / "tiny"))
        prefix = Prefix.from_string("10.1.0.0/24")
        other = Prefix.from_string("10.2.0.0/24")
        attrs = PathAttributes(as_path=ASPath.from_asns([65001, 65002]), next_hop="10.0.0.1")
        peers = [PeerEntry("10.0.0.1", "10.0.0.1", 65001)]

        rib_path = archive.path_for("ris", "rrc9", "ribs", 1000)
        write_rib_dump(
            rib_path, 1000, "198.51.100.9", peers, {0: {prefix: attrs, other: attrs}}
        )
        archive.publish("ris", "rrc9", "ribs", 1000, 60, rib_path, available_at=1100)

        updates = [
            (
                1310,
                BGP4MPMessage(
                    65001, 65535, "10.0.0.1", "198.51.100.9",
                    BGPUpdate(withdrawn=[other]),
                ),
            ),
        ]
        if with_state_down:
            updates.append(
                (
                    1400,
                    BGP4MPStateChange(
                        65001, 65535, "10.0.0.1", "198.51.100.9",
                        SessionState.ESTABLISHED, SessionState.IDLE,
                    ),
                )
            )
        upd_path = archive.path_for("ris", "rrc9", "updates", 1300)
        write_updates_dump(upd_path, updates)
        archive.publish("ris", "rrc9", "updates", 1300, 300, upd_path, available_at=1700)
        return archive

    def _run(self, archive, end=2000):
        stream = BGPStream(data_interface=BrokerDataInterface(Broker(archives=[archive])))
        stream.add_interval_filter(900, end)
        plugin = RoutingTablesPlugin(snapshot_interval=None)
        BGPCorsaro(stream, [plugin], bin_size=300).run()
        return plugin

    def test_rib_then_update_yields_up_state_and_correct_table(self, tmp_path):
        plugin = self._run(self._make_archive(tmp_path))
        vp = ("rrc9", 65001, "10.0.0.1")
        assert plugin.vp_state(vp) == VPState.UP
        table = plugin.vp_table(vp)
        assert set(map(str, table)) == {"10.1.0.0/24"}  # the other prefix was withdrawn

    def test_state_down_message_marks_vp_down(self, tmp_path):
        plugin = self._run(self._make_archive(tmp_path, with_state_down=True))
        vp = ("rrc9", 65001, "10.0.0.1")
        assert plugin.vp_state(vp) == VPState.DOWN
        assert plugin.vp_table(vp) == {}


class TestCellSemantics:
    """Unit checks for Cell.same_route and the incremental announced count."""

    def _cell(self, path=(65001, 65002), next_hop="10.0.0.1", communities=None,
              announced=True, time=1000):
        from repro.bgp.community import CommunitySet
        from repro.corsaro.plugins.routing_tables import Cell

        return Cell(
            as_path=ASPath.from_asns(list(path)) if announced else None,
            next_hop=next_hop if announced else None,
            communities=CommunitySet.from_pairs(communities or []) if announced else None,
            last_modified=time,
            announced=announced,
        )

    def test_same_route_detects_community_only_change(self):
        """Regression: a community-only change is a route change (policy)."""
        plain = self._cell(communities=[])
        tagged = self._cell(communities=[(65535, 666)])
        assert not plain.same_route(tagged)
        assert plain.same_route(self._cell(communities=[]))
        assert tagged.same_route(self._cell(communities=[(65535, 666)]))

    def test_same_route_still_compares_path_and_next_hop(self):
        base = self._cell()
        assert not base.same_route(self._cell(path=(65001, 65003)))
        assert not base.same_route(self._cell(next_hop="10.0.0.2"))
        assert not base.same_route(self._cell(announced=False))

    def test_store_cell_tracks_announced_count(self):
        from repro.corsaro.plugins.routing_tables import VPTable

        table = VPTable()
        p1, p2 = Prefix.from_string("10.1.0.0/24"), Prefix.from_string("10.2.0.0/24")
        table.store_cell(p1, self._cell())
        table.store_cell(p2, self._cell())
        assert table.active_prefix_count() == 2
        table.store_cell(p1, self._cell(path=(65001, 65009)))  # replace, still announced
        assert table.active_prefix_count() == 2
        table.store_cell(p2, self._cell(announced=False))  # withdraw
        assert table.active_prefix_count() == 1
        table.store_cell(p2, self._cell(announced=False))  # repeated withdraw
        assert table.active_prefix_count() == 1
        table.store_cell(p2, self._cell())  # re-announce
        assert table.active_prefix_count() == 2


class TestCommunityDiffRegression:
    """End-to-end: a community-only re-announcement must produce a DiffCell."""

    def _make_archive(self, tmp_path):
        from repro.bgp.attributes import PathAttributes
        from repro.bgp.community import CommunitySet
        from repro.bgp.message import BGPUpdate
        from repro.mrt.records import BGP4MPMessage, PeerEntry
        from repro.mrt.writer import write_rib_dump, write_updates_dump

        archive = Archive(str(tmp_path / "commdiff"))
        prefix = Prefix.from_string("10.1.0.0/24")
        path = ASPath.from_asns([65001, 65002])
        attrs_plain = PathAttributes(as_path=path, next_hop="10.0.0.1")
        peers = [PeerEntry("10.0.0.1", "10.0.0.1", 65001)]

        rib_path = archive.path_for("ris", "rrc9", "ribs", 1000)
        write_rib_dump(rib_path, 1000, "198.51.100.9", peers, {0: {prefix: attrs_plain}})
        archive.publish("ris", "rrc9", "ribs", 1000, 60, rib_path, available_at=1100)

        # Same prefix, same path, same next hop — only a black-holing
        # community appears.
        attrs_tagged = PathAttributes(
            as_path=path,
            next_hop="10.0.0.1",
            communities=CommunitySet.from_pairs([(65535, 666)]),
        )
        updates = [
            (
                1310,
                BGP4MPMessage(
                    65001, 65535, "10.0.0.1", "198.51.100.9",
                    BGPUpdate(announced=[prefix], attributes=attrs_tagged),
                ),
            ),
        ]
        upd_path = archive.path_for("ris", "rrc9", "updates", 1300)
        write_updates_dump(upd_path, updates)
        archive.publish("ris", "rrc9", "updates", 1300, 300, upd_path, available_at=1700)
        return archive

    def test_community_only_change_produces_diff_cell(self, tmp_path):
        archive = self._make_archive(tmp_path)
        stream = BGPStream(data_interface=BrokerDataInterface(Broker(archives=[archive])))
        stream.add_interval_filter(900, 2000)
        plugin = RoutingTablesPlugin(snapshot_interval=None)
        corsaro = BGPCorsaro(stream, [plugin], bin_size=300)
        corsaro.run()
        outputs = [o.value for o in corsaro.outputs_for("routing-tables") if o.interval_start >= 0]

        # The re-announcement bin must publish the cell with its new
        # communities, even though path and next hop did not change.
        late_diffs = [
            d
            for out in outputs
            if out.interval_start >= 1200
            for d in out.diffs
            if str(d.prefix) == "10.1.0.0/24"
        ]
        assert late_diffs, "community-only change did not surface as a DiffCell"
        assert any(
            d.communities is not None and (65535, 666) in d.communities for d in late_diffs
        )

        # And the incremental table size matches a brute-force rescan.
        vp = ("rrc9", 65001, "10.0.0.1")
        table = plugin._tables[vp]
        assert table.active_prefix_count() == sum(
            1 for cell in table.cells.values() if cell.announced
        )
