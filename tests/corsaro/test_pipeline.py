"""Tests for the BGPCorsaro pipeline driver and the simple plugins."""

from __future__ import annotations

import pytest

from repro.corsaro.pipeline import BGPCorsaro
from repro.corsaro.plugin import Plugin, TaggedRecord
from repro.corsaro.plugins import (
    CommunityDiversityPlugin,
    ElemTypeTagger,
    MOASPlugin,
    PrefixMonitorPlugin,
    StatsPlugin,
    VisibilityPlugin,
)

from tests.corsaro.conftest import make_corsaro_stream


class _RecordingPlugin(Plugin):
    """Test helper: records every pipeline callback it receives."""

    name = "recorder"

    def __init__(self) -> None:
        self.started = []
        self.records = 0
        self.ended = []
        self.finished = False

    def start_interval(self, interval_start: int) -> None:
        self.started.append(interval_start)

    def process_record(self, tagged: TaggedRecord) -> None:
        self.records += 1

    def end_interval(self, interval_start: int) -> int:
        self.ended.append(interval_start)
        return self.records

    def finish(self) -> str:
        self.finished = True
        return "done"


class TestPipelineDriver:
    def test_bin_size_must_be_positive(self, corsaro_archive, corsaro_scenario):
        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
        )
        with pytest.raises(ValueError):
            BGPCorsaro(stream, [], bin_size=0)

    def test_bins_are_aligned_contiguous_and_cover_the_stream(
        self, corsaro_archive, corsaro_scenario
    ):
        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
        )
        plugin = _RecordingPlugin()
        corsaro = BGPCorsaro(stream, [plugin], bin_size=300)
        corsaro.run()
        assert plugin.started
        assert all(ts % 300 == 0 for ts in plugin.started)
        # started bins are contiguous.
        assert all(b - a == 300 for a, b in zip(plugin.started, plugin.started[1:]))
        # every started bin was ended.
        assert plugin.started == plugin.ended
        assert plugin.finished
        assert corsaro.records_processed > 0

    def test_batch_size_must_be_positive(self, corsaro_archive, corsaro_scenario):
        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
        )
        with pytest.raises(ValueError):
            BGPCorsaro(stream, [], batch_size=0)

    def test_batched_pipeline_matches_record_at_a_time(
        self, corsaro_archive, corsaro_scenario
    ):
        """Riding the batched engine changes no bin boundary or output."""
        from repro.core.parallel import ParallelConfig

        def outputs(batch_size, parallel):
            stream = make_corsaro_stream(
                corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
            )
            if parallel is not None:
                stream.set_parallel(parallel)
            stats = StatsPlugin()
            corsaro = BGPCorsaro(stream, [stats], bin_size=900, batch_size=batch_size)
            corsaro.run()
            return [
                (o.plugin, o.interval_start, o.value.records, o.value.elems)
                for o in corsaro.outputs_for("stats")
            ], corsaro.records_processed

        reference = outputs(None, None)
        assert reference[1] > 0
        assert outputs(64, None) == reference
        assert outputs(64, ParallelConfig(executor="thread", max_workers=2)) == reference

    def test_outputs_collected_per_plugin(self, corsaro_archive, corsaro_scenario):
        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
        )
        stats = StatsPlugin()
        corsaro = BGPCorsaro(stream, [stats], bin_size=900)
        outputs = corsaro.run()
        assert outputs
        series = corsaro.series_for("stats")
        assert sum(v.records for v in series.values()) == corsaro.records_processed
        assert sum(v.elems for v in series.values()) > 0

    def test_stateless_plugin_tags_are_visible_downstream(
        self, corsaro_archive, corsaro_scenario
    ):
        class TagChecker(Plugin):
            name = "tag-checker"

            def __init__(self) -> None:
                self.tagged_records = 0
                self.records = 0

            def process_record(self, tagged: TaggedRecord) -> None:
                self.records += 1
                if tagged.has_tag(ElemTypeTagger.TYPES_TAG):
                    self.tagged_records += 1

        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
        )
        checker = TagChecker()
        corsaro = BGPCorsaro(stream, [ElemTypeTagger(), checker], bin_size=900)
        corsaro.run()
        assert checker.records > 0
        assert checker.tagged_records == checker.records

    def test_stateless_plugins_produce_no_bin_output(self, corsaro_archive, corsaro_scenario):
        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
        )
        corsaro = BGPCorsaro(stream, [ElemTypeTagger()], bin_size=900)
        assert corsaro.run() == []


class TestSimplePlugins:
    def test_stats_plugin_counts_by_collector(self, corsaro_archive, corsaro_scenario):
        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
        )
        corsaro = BGPCorsaro(stream, [StatsPlugin()], bin_size=1800)
        corsaro.run()
        collectors = set()
        for output in corsaro.outputs_for("stats"):
            if output.interval_start < 0:
                continue
            collectors.update(output.value.records_per_collector)
        assert collectors == {c.name for c in corsaro_scenario.collectors}

    def test_visibility_plugin_counts_per_country(self, corsaro_archive, corsaro_scenario):
        topology = corsaro_scenario.topology
        prefix_countries = {}
        for asn in topology.asns():
            for prefix in topology.node(asn).all_prefixes:
                prefix_countries[prefix] = topology.node(asn).country
        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
        )
        plugin = VisibilityPlugin(prefix_countries=prefix_countries)
        corsaro = BGPCorsaro(stream, [plugin], bin_size=1800)
        corsaro.run()
        outputs = [o.value for o in corsaro.outputs_for("visibility") if o.interval_start >= 0]
        assert outputs
        last = outputs[-1]
        assert last.visible_prefixes > 0
        assert sum(count for _, count in last.per_country) == last.visible_prefixes

    def test_community_diversity_plugin(self, corsaro_archive, corsaro_scenario):
        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end,
            **{"record-type": ["ribs"]},
        )
        plugin = CommunityDiversityPlugin()
        corsaro = BGPCorsaro(stream, [plugin], bin_size=3600)
        corsaro.run()
        outputs = [
            o.value
            for o in corsaro.outputs_for("community-diversity")
            if o.interval_start >= 0
        ]
        assert outputs
        final = outputs[-1]
        assert final.total_distinct_communities > 0
        assert 0 < final.vps_observing_fraction <= 1.0
        # Per-collector counts are at least as large as any of their VPs'.
        per_vp = dict(final.per_vp_asn_identifiers)
        per_collector = dict(final.per_collector_asn_identifiers)
        for (collector, _asn), count in per_vp.items():
            assert per_collector[collector] >= count


class TestMOASPlugin:
    def test_hijack_creates_moas_set(self, corsaro_archive, corsaro_scenario):
        hijack = next(
            e for e in corsaro_scenario.timeline.events if type(e).__name__ == "PrefixHijackEvent"
        )
        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
        )
        plugin = MOASPlugin()
        corsaro = BGPCorsaro(stream, [plugin], bin_size=900)
        corsaro.run()
        outputs = {
            o.interval_start: o.value
            for o in corsaro.outputs_for("moas")
            if o.interval_start >= 0
        }
        during = [
            v for ts, v in outputs.items() if hijack.interval.start <= ts < hijack.interval.end
        ]
        assert during
        moas_during = max(v.moas_prefix_count for v in during)
        assert moas_during >= 1
        expected_set = frozenset({hijack.hijacker_asn, hijack.victim_asn})
        all_sets = set()
        for v in during:
            all_sets.update(v.moas_sets)
        assert expected_set in all_sets


class TestPrefixMonitorPlugin:
    def test_requires_ranges(self):
        with pytest.raises(ValueError):
            PrefixMonitorPlugin([])

    def test_origin_spike_during_hijack(self, corsaro_archive, corsaro_scenario):
        """The Figure 6 signal: unique origin count rises during the hijack."""
        hijack = next(
            e for e in corsaro_scenario.timeline.events if type(e).__name__ == "PrefixHijackEvent"
        )
        victim_ranges = list(corsaro_scenario.topology.node(hijack.victim_asn).prefixes)
        stream = make_corsaro_stream(
            corsaro_archive, corsaro_scenario.start, corsaro_scenario.end
        )
        plugin = PrefixMonitorPlugin(victim_ranges)
        corsaro = BGPCorsaro(stream, [plugin], bin_size=300)
        corsaro.run()
        series = {
            o.interval_start: o.value
            for o in corsaro.outputs_for("pfxmonitor")
            if o.interval_start >= 0
        }
        before = [
            v.unique_origin_asns
            for ts, v in series.items()
            if ts < hijack.interval.start - 300 and v.unique_prefixes > 0
        ]
        during = [
            v.unique_origin_asns
            for ts, v in series.items()
            if hijack.interval.start + 300 <= ts < hijack.interval.end
        ]
        assert before and during
        assert max(before) == 1
        assert max(during) == 2
