"""Tests for the bgpcorsaro command-line tool."""

from __future__ import annotations

import io

import pytest

from repro.corsaro.cli import build_parser, build_plugins, run
from repro.corsaro.plugins import (
    MOASPlugin,
    PrefixMonitorPlugin,
    RoutingTablesPlugin,
    StatsPlugin,
    VisibilityPlugin,
)


class TestPluginFactory:
    def test_default_is_stats(self):
        plugins = build_plugins([])
        assert len(plugins) == 1 and isinstance(plugins[0], StatsPlugin)

    def test_all_named_plugins(self):
        plugins = build_plugins(
            ["stats", "moas", "visibility", "routing-tables", "pfxmonitor:10.0.0.0/8+10.1.0.0/16"]
        )
        types = [type(p) for p in plugins]
        assert types == [
            StatsPlugin,
            MOASPlugin,
            VisibilityPlugin,
            RoutingTablesPlugin,
            PrefixMonitorPlugin,
        ]
        assert len(plugins[-1].ranges) == 2

    def test_pfxmonitor_requires_prefixes(self):
        with pytest.raises(SystemExit):
            build_plugins(["pfxmonitor"])

    def test_unknown_plugin_rejected(self):
        with pytest.raises(SystemExit):
            build_plugins(["frobnicator"])


class TestCLIRuns:
    def _run(self, corsaro_archive, corsaro_scenario, extra):
        parser = build_parser()
        args = parser.parse_args(
            [
                "--archive",
                corsaro_archive.root,
                "-w",
                f"{corsaro_scenario.start},{corsaro_scenario.end}",
                "-b",
                "900",
            ]
            + extra
        )
        out = io.StringIO()
        assert run(args, out) == 0
        return out.getvalue().splitlines()

    def test_stats_plugin_lines(self, corsaro_archive, corsaro_scenario):
        lines = self._run(corsaro_archive, corsaro_scenario, ["--plugin", "stats"])
        assert lines
        assert all(line.startswith("stats|") for line in lines)
        # bin timestamps are aligned and increasing
        stamps = [int(line.split("|")[1]) for line in lines]
        assert stamps == sorted(stamps)
        assert all(s % 900 == 0 for s in stamps)

    def test_pfxmonitor_plugin_lines(self, corsaro_archive, corsaro_scenario):
        hijack = next(
            e
            for e in corsaro_scenario.timeline.events
            if type(e).__name__ == "PrefixHijackEvent"
        )
        target = str(corsaro_scenario.topology.node(hijack.victim_asn).prefixes[0])
        lines = self._run(
            corsaro_archive, corsaro_scenario, ["--plugin", f"pfxmonitor:{target}"]
        )
        origin_counts = [int(line.split("|")[3]) for line in lines]
        assert max(origin_counts) >= 2  # the hijack is visible from the CLI too

    def test_multiple_plugins_and_filters(self, corsaro_archive, corsaro_scenario):
        lines = self._run(
            corsaro_archive,
            corsaro_scenario,
            ["--plugin", "stats", "--plugin", "moas", "-p", "ris", "-t", "updates"],
        )
        names = {line.split("|")[0] for line in lines}
        assert names == {"stats", "moas"}
