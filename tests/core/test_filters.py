"""Tests for stream filters (record- and elem-level)."""

from __future__ import annotations

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.community import CommunitySet
from repro.bgp.prefix import Prefix
from repro.core.elem import BGPElem, ElemType
from repro.core.filters import FilterSet
from repro.core.record import BGPStreamRecord
from repro.mrt.constants import BGP4MPSubtype, MRTType
from repro.mrt.records import BGP4MPMessage, MRTHeader, MRTRecord
from repro.bgp.message import BGPUpdate


def _record(project="ris", collector="rrc0", dump_type="updates", time=1000):
    mrt = MRTRecord(
        MRTHeader(time, MRTType.BGP4MP, BGP4MPSubtype.MESSAGE_AS4),
        BGP4MPMessage(64500, 65000, "10.0.0.1", "10.0.0.2", BGPUpdate()),
    )
    return BGPStreamRecord(
        project=project, collector=collector, dump_type=dump_type, dump_time=time, mrt=mrt
    )


def _elem(
    elem_type=ElemType.ANNOUNCEMENT,
    prefix="192.0.2.0/24",
    peer_asn=64500,
    path=(64500, 3356, 15169),
    communities=((3356, 100),),
):
    return BGPElem(
        elem_type=elem_type,
        time=1000,
        peer_address="10.0.0.1",
        peer_asn=peer_asn,
        prefix=Prefix.from_string(prefix) if prefix else None,
        as_path=ASPath.from_asns(list(path)) if path else None,
        communities=CommunitySet.from_pairs(communities) if communities else None,
    )


class TestAddFilter:
    def test_unknown_filter_rejected(self):
        with pytest.raises(ValueError):
            FilterSet().add("bogus", "1")

    def test_record_type_normalisation(self):
        filters = FilterSet().add("record-type", "rib").add("record-type", "updates")
        assert filters.record_types == {"ribs", "updates"}
        with pytest.raises(ValueError):
            FilterSet().add("record-type", "nonsense")

    def test_elem_type_mapping(self):
        filters = FilterSet().add("elem-type", "announcements").add("elem-type", "state")
        assert filters.elem_types == {ElemType.ANNOUNCEMENT, ElemType.STATE}
        with pytest.raises(ValueError):
            FilterSet().add("elem-type", "nonsense")

    def test_interval_minus_one_means_live(self):
        filters = FilterSet().add_interval(100, -1)
        assert filters.live
        filters = FilterSet().add_interval(100, 200)
        assert not filters.live
        with pytest.raises(ValueError):
            FilterSet().add_interval(200, 100)


class TestRecordMatching:
    def test_project_collector_and_type(self):
        filters = FilterSet()
        filters.add("project", "ris").add("collector", "rrc0").add("record-type", "updates")
        assert filters.match_record(_record())
        assert not filters.match_record(_record(project="routeviews"))
        assert not filters.match_record(_record(collector="rrc1"))
        assert not filters.match_record(_record(dump_type="ribs"))

    def test_interval(self):
        filters = FilterSet().add_interval(900, 1100)
        assert filters.match_record(_record(time=1000))
        assert not filters.match_record(_record(time=1200))
        assert not filters.match_record(_record(time=800))

    def test_live_interval_has_no_upper_bound(self):
        filters = FilterSet().add_interval(900, None)
        assert filters.match_record(_record(time=10**9))

    def test_empty_filterset_matches_everything(self):
        assert FilterSet().match_record(_record())
        assert FilterSet().match_elem(_elem())


class TestElemMatching:
    def test_elem_type(self):
        filters = FilterSet().add("elem-type", "withdrawals")
        assert not filters.match_elem(_elem())
        assert filters.match_elem(_elem(elem_type=ElemType.WITHDRAWAL, path=(), communities=()))

    def test_peer_asn(self):
        filters = FilterSet().add("peer-asn", "64500")
        assert filters.match_elem(_elem())
        assert not filters.match_elem(_elem(peer_asn=1))

    def test_origin_asn(self):
        filters = FilterSet().add("origin-asn", "15169")
        assert filters.match_elem(_elem())
        assert not filters.match_elem(_elem(path=(64500, 3356)))
        assert not filters.match_elem(_elem(path=()))

    def test_prefix_more_specific_semantics(self):
        """The -k 192.0.0.0/8 semantics: subprefixes match too."""
        filters = FilterSet().add("prefix", "192.0.0.0/8")
        assert filters.match_elem(_elem(prefix="192.0.2.0/24"))
        assert filters.match_elem(_elem(prefix="192.0.0.0/8"))
        assert not filters.match_elem(_elem(prefix="193.0.0.0/24"))
        assert not filters.match_elem(_elem(prefix=None, path=()))

    def test_prefix_exact_semantics(self):
        filters = FilterSet().add("prefix-exact", "192.0.2.0/24")
        assert filters.match_elem(_elem(prefix="192.0.2.0/24"))
        assert not filters.match_elem(_elem(prefix="192.0.2.0/25"))

    def test_prefix_more_semantics(self):
        filters = FilterSet().add("prefix-more", "192.0.2.0/24")
        assert filters.match_elem(_elem(prefix="192.0.2.0/24"))
        assert filters.match_elem(_elem(prefix="192.0.2.128/25"))
        assert not filters.match_elem(_elem(prefix="192.0.0.0/16"))
        assert not filters.match_elem(_elem(prefix="192.0.3.0/24"))

    def test_prefix_less_semantics(self):
        filters = FilterSet().add("prefix-less", "192.0.2.0/24")
        assert filters.match_elem(_elem(prefix="192.0.2.0/24"))
        assert filters.match_elem(_elem(prefix="192.0.0.0/16"))
        assert filters.match_elem(_elem(prefix="0.0.0.0/0"))
        assert not filters.match_elem(_elem(prefix="192.0.2.0/25"))
        assert not filters.match_elem(_elem(prefix="192.0.3.0/24"))

    def test_prefix_any_semantics(self):
        filters = FilterSet().add("prefix-any", "192.0.2.0/24")
        assert filters.match_elem(_elem(prefix="192.0.2.0/24"))
        assert filters.match_elem(_elem(prefix="192.0.2.128/25"))
        assert filters.match_elem(_elem(prefix="192.0.0.0/16"))
        assert not filters.match_elem(_elem(prefix="192.0.3.0/24"))

    def test_prefix_modes_combine_per_prefix(self):
        """The same prefix may carry several modes; any satisfied mode matches."""
        filters = (
            FilterSet()
            .add("prefix-exact", "192.0.2.0/24")
            .add("prefix-less", "192.0.2.0/24")
        )
        assert filters.match_elem(_elem(prefix="192.0.2.0/24"))
        assert filters.match_elem(_elem(prefix="192.0.0.0/16"))
        assert not filters.match_elem(_elem(prefix="192.0.2.0/25"))

    def test_prefix_filters_are_disjunctive_across_prefixes(self):
        filters = (
            FilterSet().add("prefix", "10.0.0.0/8").add("prefix", "192.0.2.0/24")
        )
        assert filters.match_elem(_elem(prefix="10.1.0.0/16"))
        assert filters.match_elem(_elem(prefix="192.0.2.0/24"))
        assert not filters.match_elem(_elem(prefix="172.16.0.0/12"))

    def test_prefixless_elem_passes_non_prefix_filters(self):
        """Regression: the prefix gate only applies when prefix filters exist.

        A state message (no prefix) must still match a filter set made of
        non-prefix terms, and must be rejected once any prefix filter is
        configured.
        """
        state = _elem(elem_type=ElemType.STATE, prefix=None, path=(), communities=())
        assert FilterSet().add("peer-asn", "64500").match_elem(state)
        assert FilterSet().add("elem-type", "state").match_elem(state)
        for name in ("prefix", "prefix-exact", "prefix-more", "prefix-less", "prefix-any"):
            assert not FilterSet().add(name, "0.0.0.0/0").match_elem(state)

    def test_ipv6_prefix_filters(self):
        filters = FilterSet().add("prefix", "2001:db8::/32")
        assert filters.match_elem(_elem(prefix="2001:db8:1::/48"))
        assert not filters.match_elem(_elem(prefix="2001:db9::/32"))
        # A v4 elem never matches a v6 filter.
        assert not filters.match_elem(_elem(prefix="32.1.13.0/24"))

    def test_aspath_regex(self):
        filters = FilterSet().add("aspath", r"\b3356\b")
        assert filters.match_elem(_elem())
        assert not filters.match_elem(_elem(path=(64500, 1299, 15169)))

    def test_community(self):
        filters = FilterSet().add("community", "3356:100")
        assert filters.match_elem(_elem())
        assert not filters.match_elem(_elem(communities=((3356, 200),)))
        assert not filters.match_elem(_elem(communities=()))

    def test_combined_filters_are_conjunctive(self):
        filters = (
            FilterSet()
            .add("elem-type", "announcements")
            .add("peer-asn", "64500")
            .add("prefix", "192.0.0.0/8")
            .add("community", "3356:100")
        )
        assert filters.match_elem(_elem())
        assert not filters.match_elem(_elem(peer_asn=9))


class TestRemoveAndCopy:
    """Gateway multiplexing surface: retract filters / clone per subscriber."""

    def test_remove_is_the_inverse_of_add(self):
        filters = (
            FilterSet()
            .add("elem-type", "announcements")
            .add("peer-asn", "64500")
            .add("origin-asn", "15169")
            .add("aspath", r"\b3356\b")
            .add("community", "3356:100")
            .add("project", "ris")
            .add("collector", "rrc0")
            .add("record-type", "rib")
        )
        assert not filters.match_elem(_elem(peer_asn=9))
        for name, value in [
            ("elem-type", "announcements"),
            ("peer-asn", "64500"),
            ("origin-asn", "15169"),
            ("aspath", r"\b3356\b"),
            ("community", "3356:100"),
            ("project", "ris"),
            ("collector", "rrc0"),
            ("record-type", "rib"),
        ]:
            filters.remove(name, value)
        # Back to the empty set: everything matches again.
        assert filters.match_elem(_elem(peer_asn=9))
        assert filters.match_record(_record(project="routeviews", dump_type="ribs"))

    def test_remove_unknown_name_rejected_and_missing_value_is_noop(self):
        filters = FilterSet().add("peer-asn", "64500")
        with pytest.raises(ValueError):
            filters.remove("bogus", "1")
        filters.remove("peer-asn", "999")  # never added: no-op
        assert filters.peer_asns == {64500}

    def test_remove_prefix_drops_only_the_named_mode(self):
        filters = (
            FilterSet().add("prefix-less", "192.0.2.0/24").add("prefix-exact", "192.0.2.0/24")
        )
        assert filters.match_elem(_elem(prefix="192.0.0.0/8"))  # via less
        filters.remove("prefix-less", "192.0.2.0/24")
        # The exact mode survives on the same prefix...
        assert filters.match_elem(_elem(prefix="192.0.2.0/24"))
        # ...but the less-specific walk is gone, and the mode mask shows it.
        assert not filters.match_elem(_elem(prefix="192.0.0.0/8"))
        from repro.core.filters import MATCH_LESS

        assert not filters.prefix_mode_mask & MATCH_LESS
        filters.remove("prefix-exact", "192.0.2.0/24")
        assert len(filters.prefix_filters) == 0
        assert filters.prefix_mode_mask == 0
        assert filters.match_elem(_elem(prefix="203.0.113.0/24"))  # no gate left

    def test_remove_prefix_recomputes_mask_from_surviving_filters(self):
        filters = (
            FilterSet().add("prefix-less", "192.0.2.0/24").add("prefix-less", "198.51.100.0/24")
        )
        filters.remove("prefix-less", "192.0.2.0/24")
        # Another watched prefix still carries the less bit.
        assert filters.match_elem(_elem(prefix="198.51.0.0/16"))

    def test_copy_is_independent(self):
        original = (
            FilterSet()
            .add("prefix", "192.0.0.0/8")
            .add("peer-asn", "64500")
            .add("aspath", r"\b3356\b")
            .add("community", "3356:100")
            .add_interval(900, None)
        )
        clone = original.copy()
        assert clone.match_elem(_elem())
        assert clone.live
        clone.remove("prefix", "192.0.0.0/8")
        clone.add("peer-asn", "9")
        # The original is untouched in both directions.
        assert original.match_elem(_elem())
        assert not original.match_elem(_elem(peer_asn=9))
        assert len(original.prefix_filters) == 1
        original.remove("community", "3356:100")
        assert clone.communities
