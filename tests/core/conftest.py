"""Fixtures for the libBGPStream core tests: a small generated archive."""

from __future__ import annotations

import pytest

from repro.broker.broker import Broker
from repro.collectors.archive import Archive
from repro.collectors.events import OutageEvent, PrefixHijackEvent, SessionResetEvent
from repro.collectors.scenario import Scenario, ScenarioConfig, build_scenario
from repro.collectors.topology import ASRole, TopologyConfig, generate_topology
from repro.core.interfaces import BrokerDataInterface
from repro.core.stream import BGPStream
from repro.utils.intervals import TimeInterval


@pytest.fixture(scope="session")
def core_scenario() -> Scenario:
    config = ScenarioConfig(
        duration=2 * 3600,
        topology=TopologyConfig(num_tier1=4, num_transit=10, num_stub=30, seed=21),
        vps_per_collector=4,
        churn_updates_per_vp_per_hour=30,
        seed=22,
    )
    topology = generate_topology(config.topology)
    start = config.start
    stub = next(a for a in topology.asns() if topology.node(a).role == ASRole.STUB)
    hijacker = next(
        a for a in topology.asns() if topology.node(a).role == ASRole.TRANSIT and a != stub
    )
    events = [
        PrefixHijackEvent(
            interval=TimeInterval(start + 1800, start + 3600),
            hijacker_asn=hijacker,
            victim_asn=stub,
            prefixes=(topology.node(stub).prefixes[0],),
        ),
        OutageEvent(
            interval=TimeInterval(start + 4500, start + 5400),
            country=topology.node(stub).country,
        ),
    ]
    scenario = build_scenario(config, events=events, topology=topology)
    # A session reset on a RIS collector so the stream carries state elems.
    rrc0 = scenario.collector("rrc0")
    scenario.timeline.add(
        SessionResetEvent(
            interval=TimeInterval(start + 6000, start + 6120),
            collector="rrc0",
            vp_asn=rrc0.vps[0].asn,
        )
    )
    return scenario


@pytest.fixture(scope="session")
def core_archive(tmp_path_factory, core_scenario) -> Archive:
    archive = Archive(str(tmp_path_factory.mktemp("core-archive")))
    core_scenario.generate(archive)
    return archive


@pytest.fixture()
def core_stream(core_archive, core_scenario) -> BGPStream:
    """A fresh historical stream over the whole scenario."""
    broker = Broker(archives=[core_archive])
    stream = BGPStream(data_interface=BrokerDataInterface(broker))
    stream.add_interval_filter(core_scenario.start, core_scenario.end)
    return stream


def make_stream(core_archive, start, end) -> BGPStream:
    broker = Broker(archives=[core_archive])
    stream = BGPStream(data_interface=BrokerDataInterface(broker))
    stream.add_interval_filter(start, end)
    return stream
