"""Unit tests for the flyweight intern pool (repro.core.intern)."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.bgp.aspath import ASPath, ASPathSegment, SegmentType
from repro.bgp.community import Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.core.intern import (
    InternPool,
    default_pool,
    parse_interning,
    parse_interning_enabled,
    parse_pool,
    reset_default_pool,
    set_parse_interning,
)


class TestInternPoolBasics:
    def test_dedups_equal_values(self):
        pool = InternPool()
        a = Prefix.from_string("10.0.0.0/8")
        b = Prefix.from_string("10.0.0.0/8")
        assert a is not b
        assert pool.prefix(a) is a  # first sight: a becomes canonical
        assert pool.prefix(b) is a  # equal value: canonical returned

    def test_distinct_values_stay_distinct(self):
        pool = InternPool()
        a = pool.prefix(Prefix.from_string("10.0.0.0/8"))
        b = pool.prefix(Prefix.from_string("10.0.0.0/9"))
        assert a is not b and a != b

    def test_string_and_generic_kinds(self):
        pool = InternPool()
        s1 = pool.string("192.0.2.1")
        s2 = pool.string("192.0.2." + "1")  # force a distinct str object
        assert s1 is s2
        t1 = pool.intern("custom-kind", (1, 2))
        assert pool.intern("custom-kind", (1, 2)) is t1
        assert pool.stats()["custom-kind"]["size"] == 1

    def test_path_interning_shares_segments(self):
        pool = InternPool()
        seg = ASPathSegment(SegmentType.AS_SET, (64512, 64513))
        p1 = pool.path(ASPath((ASPathSegment(SegmentType.AS_SEQUENCE, (701,)), seg)))
        p2 = pool.path(
            ASPath(
                (
                    ASPathSegment(SegmentType.AS_SEQUENCE, (3356,)),
                    ASPathSegment(SegmentType.AS_SET, (64512, 64513)),
                )
            )
        )
        assert p1 is not p2
        # The shared AS_SET segment is one object across both canonical paths.
        assert p1.segments[1] is p2.segments[1]

    def test_path_interning_identity_hit(self):
        pool = InternPool()
        path = pool.path(ASPath.from_asns([701, 3356, 15169]))
        assert pool.path(ASPath.from_asns([701, 3356, 15169])) is path
        assert pool.path(path) is path

    def test_communities_interning_shares_members(self):
        pool = InternPool()
        c1 = pool.communities(CommunitySet.from_pairs([(65535, 666), (3356, 1)]))
        c2 = pool.communities(CommunitySet.from_pairs([(65535, 666)]))
        assert pool.communities(CommunitySet.from_pairs([(65535, 666), (3356, 1)])) is c1
        # The member Community objects were interned too.
        member = next(iter(c2))
        assert pool.intern("community", Community(65535, 666)) is member

    def test_interned_equality_and_hash_semantics_preserved(self):
        pool = InternPool()
        raw = ASPath.from_asns([1, 2, 3])
        canonical = pool.path(ASPath.from_asns([1, 2, 3]))
        assert canonical == raw
        assert hash(canonical) == hash(raw)
        assert str(canonical) == str(raw)

    def test_flyweight_values_are_immutable(self):
        """Canonical objects are shared process-wide; mutation must raise
        (it would silently corrupt every holder and stale the cached hash)."""
        prefix = Prefix.from_string("10.0.0.0/8")
        path = ASPath.from_asns([701, 3356])
        communities = CommunitySet.from_pairs([(65535, 666)])
        community = Community(65535, 666)
        segment = path.segments[0]
        for obj, attr, value in [
            (prefix, "network", None),
            (path, "segments", ()),
            (segment, "asns", ()),
            (communities, "_communities", frozenset()),
            (community, "asn", 1),
            (prefix, "_hash", 0),
        ]:
            with pytest.raises(AttributeError):
                setattr(obj, attr, value)
            with pytest.raises(AttributeError):
                delattr(obj, attr)


class TestInternPoolBounds:
    def test_overflow_passes_values_through(self):
        pool = InternPool(max_entries=2)
        a = pool.string("a")
        b = pool.string("b")
        c = "c" * 2  # distinct object, pool full
        assert pool.string(c) is c  # uninterned pass-through
        assert pool.string("a") is a and pool.string("b") is b  # existing still hit
        stats = pool.stats()["string"]
        assert stats["size"] == 2
        assert stats["overflow"] >= 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            InternPool(max_entries=0)

    def test_prefix_kind_gets_scaled_cap(self):
        """The prefix population of a full RIB outgrows the base cap, so the
        prefix kind is bounded at a multiple of max_entries."""
        pool = InternPool(max_entries=2)
        for i in range(8):
            pool.prefix(Prefix.from_string(f"10.{i}.0.0/16"))
        stats = pool.stats()["prefix"]
        assert stats["size"] == 8  # 16x the base cap of 2: none overflowed
        assert stats["overflow"] == 0
        # The scaled cap survives pickling (it is derived state).
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.prefix(Prefix.from_string("10.200.0.0/16")) is not None
        assert clone.stats()["prefix"]["size"] == 9

    def test_stats_and_hit_rate(self):
        pool = InternPool()
        assert pool.hit_rate == 0.0
        pool.string("x")
        pool.string("x" + "")
        stats = pool.stats()["string"]
        assert stats == {"size": 1, "hits": 1, "misses": 1, "overflow": 0}
        assert 0.0 < pool.hit_rate <= 1.0
        assert "hit_rate" in repr(pool) or "entries" in repr(pool)

    def test_clear(self):
        pool = InternPool()
        pool.string("x")
        assert len(pool) == 1
        pool.clear()
        assert len(pool) == 0


class TestInternPoolConcurrencyAndTransport:
    def test_thread_safety_under_contention(self):
        pool = InternPool()
        values = [f"10.{i % 64}.0.0/16" for i in range(2000)]
        errors = []

        def worker():
            try:
                for text in values:
                    canonical = pool.prefix(Prefix.from_string(text))
                    assert str(canonical) == text
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert pool.stats()["prefix"]["size"] == 64

    def test_counters_exact_under_concurrent_hammering(self):
        # The gateway runs the pool genuinely multi-threaded (decode thread
        # + executor callbacks) and its decode-once assertions read stats(),
        # so hit/miss/overflow accounting must be exact — not best-effort —
        # under contention, including first-seen kinds and saturated kinds.
        pool = InternPool(max_entries=8)  # tiny cap => overflow path is hot
        n_threads, n_rounds = 8, 400
        values = [f"198.51.{i}.0/24" for i in range(32)]  # 32 > cap of 8
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(seed):
            try:
                barrier.wait()
                for round_no in range(n_rounds):
                    for i, text in enumerate(values):
                        pool.prefix(Prefix.from_string(text))
                        # Brand-new kind registered concurrently from every
                        # thread: the check-then-act window in registration
                        # must never drop a counter or raise.
                        pool.intern("flap", (seed + i + round_no) % 16)
                    if round_no % 50 == seed % 50:
                        pool.stats()  # concurrent reader
                        pickle.dumps(pool)  # concurrent pickler
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = pool.stats()
        calls = n_threads * n_rounds * len(values)
        for kind in ("prefix", "flap"):
            s = stats[kind]
            assert s["hits"] + s["misses"] + s["overflow"] == calls, kind
        # Prefixes get a 16x cap multiplier, so all 32 fit (no overflow);
        # the first-seen "flap" kind has the base cap of 8 and saturates.
        assert stats["prefix"]["size"] == len(values)
        assert stats["prefix"]["misses"] == len(values)
        assert stats["prefix"]["overflow"] == 0
        assert stats["flap"]["size"] == 8  # base cap respected
        assert stats["flap"]["misses"] == 8
        assert stats["flap"]["overflow"] >= (16 - 8) * n_rounds
        # Canonical identity is stable once inserted.
        first = pool.prefix(Prefix.from_string(values[0]))
        assert pool.prefix(Prefix.from_string(values[0])) is first

    def test_pickled_pool_carries_exact_counters(self):
        pool = InternPool()
        for _ in range(3):
            pool.prefix(Prefix.from_string("10.0.0.0/8"))
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.stats()["prefix"] == pool.stats()["prefix"]
        clone.prefix(Prefix.from_string("10.0.0.0/8"))
        assert clone.stats()["prefix"]["hits"] == pool.stats()["prefix"]["hits"] + 1

    def test_pool_pickles_with_contents(self):
        pool = InternPool(max_entries=1234)
        canonical = pool.path(ASPath.from_asns([701, 3356]))
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.max_entries == 1234
        assert clone.sizes() == pool.sizes()
        # The clone keeps working (lock was rebuilt) and dedups to *its* copy.
        assert clone.path(ASPath.from_asns([701, 3356])) == canonical

    def test_merge_folds_canonicals(self):
        a, b = InternPool(), InternPool()
        pa = a.prefix(Prefix.from_string("10.0.0.0/8"))
        b.prefix(Prefix.from_string("192.0.2.0/24"))
        b.merge(a)
        assert b.prefix(Prefix.from_string("10.0.0.0/8")) is pa
        assert b.stats()["prefix"]["size"] == 2


class TestProcessDefaults:
    def test_default_pool_is_a_singleton(self):
        reset_default_pool()
        pool = default_pool()
        assert default_pool() is pool
        reset_default_pool()
        assert default_pool() is not pool

    def test_parse_interning_switch_and_context(self):
        previous = set_parse_interning(True)
        try:
            assert parse_interning_enabled()
            assert parse_pool() is not None
            with parse_interning(False):
                assert not parse_interning_enabled()
                assert parse_pool() is None
                assert parse_pool(True) is not None  # per-call override
            assert parse_interning_enabled()
            assert parse_pool(False) is None
        finally:
            set_parse_interning(previous)
