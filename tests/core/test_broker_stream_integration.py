"""Integration tests: paginated broker interface, BGPStream(broker=...),
segment-cached replay, and the bgpreader cache/cursor flags."""

from __future__ import annotations

import pytest

from repro.broker.broker import Broker
from repro.broker.segments import SegmentCache
from repro.core.interfaces import BrokerDataInterface
from repro.core.reader import build_parser, run
from repro.core.stream import BGPStream


def _signature(stream):
    return [
        (r.time, r.project, r.collector, r.dump_type, r.status, r.dump_position)
        for r in stream.records()
    ]


class TestPaginatedInterface:
    def test_paginated_batches_match_unpaginated(self, core_archive, core_scenario):
        plain = BGPStream(data_interface=BrokerDataInterface(Broker(archives=[core_archive])))
        plain.add_interval_filter(core_scenario.start, core_scenario.end)
        paged = BGPStream(
            data_interface=BrokerDataInterface(Broker(archives=[core_archive]), page_size=2)
        )
        paged.add_interval_filter(core_scenario.start, core_scenario.end)
        assert _signature(paged) == _signature(plain)

    def test_last_cursor_resumes_the_pull(self, core_archive, core_scenario):
        # A short window span forces several windows so there is a
        # mid-stream cursor to resume from.
        interface = BrokerDataInterface(
            Broker(archives=[core_archive], window_span=1800), page_size=2
        )
        stream = BGPStream(data_interface=interface)
        stream.add_interval_filter(core_scenario.start, core_scenario.end)
        batches = interface.batches(stream.filters)
        first = next(batches)
        batches.close()
        assert interface.last_cursor is not None

        resumed_iface = BrokerDataInterface(
            Broker(archives=[core_archive], window_span=1800),
            page_size=2,
            cursor=interface.last_cursor,
        )
        resumed = BGPStream(data_interface=resumed_iface)
        resumed.add_interval_filter(core_scenario.start, core_scenario.end)
        rest_paths = {s.path for b in resumed_iface.batches(resumed.filters) for s in b}
        assert not {s.path for s in first} & rest_paths


class TestBrokerShortcut:
    def test_broker_kwarg_defaults_to_parallel(self, core_archive):
        stream = BGPStream(broker=Broker(archives=[core_archive]))
        assert stream._parallel is not None

    def test_parallel_false_forces_sequential(self, core_archive):
        stream = BGPStream(broker=Broker(archives=[core_archive]), parallel=False)
        assert stream._parallel is None

    def test_broker_kwarg_excludes_other_interfaces(self, core_archive):
        with pytest.raises(ValueError):
            BGPStream(broker=Broker(archives=[core_archive]), data_interface="csvfile")

    def test_broker_replay_matches_sequential_reference(self, core_archive, core_scenario):
        reference = BGPStream(
            data_interface=BrokerDataInterface(Broker(archives=[core_archive]))
        )
        reference.add_interval_filter(core_scenario.start, core_scenario.end)
        fast = BGPStream(broker=Broker(archives=[core_archive]))
        fast.add_interval_filter(core_scenario.start, core_scenario.end)
        flat = [
            (r.time, r.project, r.collector, r.dump_type, r.status, r.dump_position)
            for batch in fast.records_batched()
            for r in batch
        ]
        assert flat == _signature(reference)


class TestSegmentCachedStream:
    def test_warm_replay_identical(self, tmp_path, core_archive, core_scenario):
        cache = SegmentCache(str(tmp_path / "segments"))

        def replay():
            stream = BGPStream(
                broker=Broker(archives=[core_archive]),
                segment_cache=cache,
                parallel=False,
            )
            stream.add_interval_filter(core_scenario.start, core_scenario.end)
            return _signature(stream)

        cold = replay()
        stores = cache.stats()["stores"]
        assert stores > 0
        warm = replay()
        assert warm == cold
        assert cache.stats()["hits"] >= stores


class TestReaderFlags:
    def test_broker_cache_flag_warms_across_invocations(self, tmp_path, core_archive):
        import io

        parser = build_parser()
        # No --limit: a truncated read abandons iteration mid-file and the
        # cache (correctly) stores nothing from incomplete reads.
        argv = [
            "--archive", core_archive.root,
            "--broker-cache", str(tmp_path / "segcache"),
        ]
        out1, out2 = io.StringIO(), io.StringIO()
        assert run(parser.parse_args(argv), out1) == 0
        assert run(parser.parse_args(argv), out2) == 0
        assert out1.getvalue() == out2.getvalue()
        cache = SegmentCache(str(tmp_path / "segcache"))
        assert cache.stats()["segments"] > 0

    def test_cache_size_requires_cache_dir(self):
        parser = build_parser()
        args = parser.parse_args(["--archive", "/tmp/x", "--broker-cache-size", "1024"])
        with pytest.raises(SystemExit):
            run(args, __import__("io").StringIO())

    def test_page_size_requires_archive(self, tmp_path):
        parser = build_parser()
        single = str(tmp_path / "f.mrt")
        open(single, "wb").close()
        args = parser.parse_args(["--single-file", single, "--page-size", "2"])
        with pytest.raises(SystemExit):
            run(args, __import__("io").StringIO())

    def test_paginated_archive_read_matches_plain(self, core_archive):
        import io

        parser = build_parser()
        plain_out, paged_out = io.StringIO(), io.StringIO()
        run(parser.parse_args(["--archive", core_archive.root]), plain_out)
        run(
            parser.parse_args(["--archive", core_archive.root, "--page-size", "2"]),
            paged_out,
        )
        assert paged_out.getvalue() == plain_out.getvalue()
