"""Tests for the BGPReader CLI and the PyBGPStream-compatible facade."""

from __future__ import annotations

import io

import pytest

from repro.broker.broker import Broker
from repro.core.interfaces import BrokerDataInterface
from repro.core.reader import build_parser, build_stream, run
from repro import pybgpstream


class TestBGPReaderCLI:
    def _run(self, core_archive, extra_args):
        parser = build_parser()
        args = parser.parse_args(["--archive", core_archive.root] + extra_args)
        out = io.StringIO()
        status = run(args, out)
        assert status == 0
        return out.getvalue().splitlines()

    def test_basic_elem_output(self, core_archive, core_scenario):
        lines = self._run(
            core_archive, ["-w", f"{core_scenario.start},{core_scenario.end}"]
        )
        data_lines = [line for line in lines if not line.startswith("#")]
        assert data_lines
        first = data_lines[0].split("|")
        assert first[0] in ("R", "A", "W", "S")
        assert first[2] in ("ris", "routeviews")

    def test_type_and_project_filters(self, core_archive, core_scenario):
        lines = self._run(
            core_archive,
            ["-w", f"{core_scenario.start},{core_scenario.end}", "-t", "updates", "-p", "ris"],
        )
        data_lines = [line for line in lines if not line.startswith("#")]
        assert data_lines
        assert all(line.split("|")[2] == "ris" for line in data_lines)
        assert all(line.split("|")[0] in ("A", "W", "S") for line in data_lines)

    def test_prefix_filter_subprefix_semantics(self, core_archive, core_scenario):
        lines = self._run(
            core_archive,
            ["-w", f"{core_scenario.start},{core_scenario.end}", "-k", "10.0.0.0/8"],
        )
        data_lines = [line for line in lines if not line.startswith("#")]
        assert data_lines
        for line in data_lines:
            prefix = line.split("|")[6]
            assert prefix.startswith("10.")

    def test_prefix_mode_flags(self, core_archive, core_scenario):
        """--prefix-exact/-more/-less/-any wire the filter-language modes."""
        window = ["-w", f"{core_scenario.start},{core_scenario.end}"]
        all_lines = [
            line for line in self._run(core_archive, window) if not line.startswith("#")
        ]
        assert all_lines
        # Pick a concrete announced prefix and derive related queries.
        target = next(line.split("|")[6] for line in all_lines if line.split("|")[6])
        exact = [
            line.split("|")[6]
            for line in self._run(core_archive, window + ["--prefix-exact", target])
            if not line.startswith("#")
        ]
        assert exact and set(exact) == {target}
        more = [
            line.split("|")[6]
            for line in self._run(core_archive, window + ["--prefix-more", "10.0.0.0/8"])
            if not line.startswith("#")
        ]
        assert more and all(p.startswith("10.") for p in more)
        # prefix-less of a host address inside a seen prefix returns its
        # covering prefixes (at least the target itself).
        address = target.split("/")[0]
        less = [
            line.split("|")[6]
            for line in self._run(
                core_archive, window + ["--prefix-less", f"{address}/32"]
            )
            if not line.startswith("#")
        ]
        assert target in less
        any_mode = [
            line.split("|")[6]
            for line in self._run(core_archive, window + ["--prefix-any", f"{address}/32"])
            if not line.startswith("#")
        ]
        assert set(less) <= set(any_mode)

    def test_bgpdump_format_and_limit(self, core_archive, core_scenario):
        lines = self._run(
            core_archive,
            [
                "-w",
                f"{core_scenario.start},{core_scenario.end}",
                "--bgpdump-format",
                "--limit",
                "5",
            ],
        )
        data_lines = [line for line in lines if not line.startswith("#")]
        assert len(data_lines) == 5
        assert all(line.startswith(("BGP4MP|", "TABLE_DUMP2|")) for line in data_lines)

    def test_show_records_flag(self, core_archive, core_scenario):
        lines = self._run(
            core_archive,
            ["-w", f"{core_scenario.start},{core_scenario.end}", "-r", "--limit", "20"],
        )
        assert any(line.startswith(("ribs|", "updates|")) for line in lines)

    def test_parallel_engine_output_matches_sequential(self, core_archive, core_scenario):
        window = ["-w", f"{core_scenario.start},{core_scenario.end}", "-r"]
        sequential = self._run(core_archive, window)
        parallel = self._run(
            core_archive, window + ["--parallel", "--workers", "2", "--batch-size", "16"]
        )
        assert parallel == sequential

    def test_no_intern_flag_output_identical(self, core_archive, core_scenario):
        from repro.core.intern import parse_interning_enabled

        window = ["-w", f"{core_scenario.start},{core_scenario.end}", "-r", "--limit", "200"]
        interned = self._run(core_archive, window)
        uninterned = self._run(core_archive, window + ["--no-intern"])
        # The opt-out is per-stream; the process-wide switch is untouched.
        assert parse_interning_enabled()
        assert uninterned == interned

    def test_no_intern_disables_stream_pool(self, core_archive):
        parser = build_parser()
        args = parser.parse_args(["--archive", core_archive.root, "--no-intern"])
        stream = build_stream(args)
        assert stream.intern_pool is None
        assert stream.intern_stats() is None

    def test_tuning_flags_require_parallel(self, core_archive):
        parser = build_parser()
        args = parser.parse_args(["--archive", core_archive.root, "--workers", "4"])
        with pytest.raises(SystemExit):
            build_stream(args)

    def test_requires_exactly_one_source(self):
        parser = build_parser()
        args = parser.parse_args([])
        with pytest.raises(SystemExit):
            build_stream(args)


class TestPyBGPStreamFacade:
    def _interface(self, core_archive):
        return BrokerDataInterface(Broker(archives=[core_archive]))

    def test_listing1_idiom(self, core_archive, core_scenario):
        """The exact loop shape of the paper's Listing 1 works."""
        stream = pybgpstream.BGPStream(data_interface=self._interface(core_archive))
        rec = pybgpstream.BGPRecord()
        stream.add_filter("record-type", "ribs")
        stream.add_interval_filter(core_scenario.start, core_scenario.end)
        stream.start()

        elem_count = 0
        as_paths = []
        while stream.get_next_record(rec):
            assert rec.type == "ribs"
            elem = rec.get_next_elem()
            while elem:
                assert elem.peer_asn > 0
                fields = elem.fields
                if "as-path" in fields:
                    as_paths.append(fields["as-path"])
                elem_count += 1
                elem = rec.get_next_elem()
        assert elem_count > 0
        assert as_paths
        assert all(isinstance(p, str) for p in as_paths)

    def test_live_interval_minus_one(self, core_archive, core_scenario):
        stream = pybgpstream.BGPStream(data_interface=self._interface(core_archive))
        stream.add_interval_filter(core_scenario.start, -1)
        assert stream.core.filters.live

    def test_default_interface_registration(self, core_archive):
        pybgpstream.set_default_data_interface(None)
        with pytest.raises(RuntimeError):
            pybgpstream.BGPStream()
        interface = self._interface(core_archive)
        pybgpstream.set_default_data_interface(interface)
        try:
            assert pybgpstream.get_default_data_interface() is interface
            stream = pybgpstream.BGPStream()
            assert stream.core is not None
        finally:
            pybgpstream.set_default_data_interface(None)

    def test_elem_filters_applied_by_get_next_elem(self, core_archive, core_scenario):
        vp_asn = core_scenario.collectors[0].vps[0].asn
        stream = pybgpstream.BGPStream(data_interface=self._interface(core_archive))
        rec = pybgpstream.BGPRecord()
        stream.add_filter("peer-asn", str(vp_asn))
        stream.add_interval_filter(core_scenario.start, core_scenario.end)
        stream.start()
        seen = set()
        while stream.get_next_record(rec):
            elem = rec.get_next_elem()
            while elem:
                seen.add(elem.peer_asn)
                elem = rec.get_next_elem()
        assert seen == {vp_asn}
