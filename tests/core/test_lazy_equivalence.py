"""The lazy zero-copy decode tier must be observably invisible (ISSUE 6).

Property tests: for randomized archives and live BMP feeds, the elem
streams produced by the lazy tier — as dataclass values, ASCII lines and
``field_dict()`` views — must be *identical* to the eager reference, across
every combination of interning, sequential/parallel engines and filters.
Corruption must surface identically too: the same exception out of
``decode_update``, the same not-valid records out of the MRT parser, the
same corrupt-message signals out of the BMP scan, whichever tier decodes.
"""

from __future__ import annotations

import pickle
import random
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bgp.aspath import ASPath, ASPathSegment, SegmentType
from repro.bgp.attributes import (
    LazyPathAttributes,
    PathAttributes,
    decode_attributes,
    lazy_decoding,
)
from repro.bgp.community import CommunitySet
from repro.bgp.fsm import SessionState
from repro.bgp.message import BGPDecodeError, BGPUpdate, decode_update
from repro.bgp.prefix import Prefix
from repro.bmp.codec import scan_messages
from repro.bmp.messages import BMPMessage, BMPPeerHeader
from repro.bmp.source import BMPFeedProducer
from repro.broker.broker import Broker
from repro.collectors.archive import Archive
from repro.core import profiling
from repro.core.interfaces import BrokerDataInterface
from repro.core.intern import InternPool, parse_interning, reset_default_pool
from repro.core.parallel import ParallelConfig
from repro.core.stream import BGPStream
from repro.kafka.broker import MessageBroker
from repro.mrt.parser import clear_index_cache, read_dump
from repro.mrt.records import BGP4MPMessage, BGP4MPStateChange, PeerEntry
from repro.mrt.writer import write_rib_dump, write_updates_dump

# ---------------------------------------------------------------------------
# Randomized archive builder (compact cousin of the interning suite's)
# ---------------------------------------------------------------------------

PEER_ASNS = (65001, 65002)


def _random_path(rng: random.Random) -> ASPath:
    segments = [
        ASPathSegment(
            SegmentType.AS_SEQUENCE,
            tuple(rng.randrange(1, 65000) for _ in range(rng.randrange(1, 5))),
        )
    ]
    if rng.random() < 0.3:
        segments.append(
            ASPathSegment(
                SegmentType.AS_SET,
                tuple(sorted({rng.randrange(64512, 64600) for _ in range(2)})),
            )
        )
    return ASPath(tuple(segments))


def _build_archive(root: str, seed: int) -> Archive:
    """One collector with a RIB dump and an updates dump (MP-reach, state)."""
    rng = random.Random(seed)
    archive = Archive(root)
    paths = [_random_path(rng) for _ in range(6)]
    community_sets = [
        CommunitySet.from_pairs(
            (rng.randrange(1, 65000), rng.randrange(0, 1000))
            for _ in range(rng.randrange(0, 4))
        )
        for _ in range(4)
    ]
    v4_prefixes = [
        Prefix.from_string(f"10.{rng.randrange(256)}.{rng.randrange(256)}.0/24")
        for _ in range(12)
    ]
    v6_prefixes = [Prefix.from_string(f"2001:db8:{i:x}::/48") for i in range(3)]
    peers = [PeerEntry(f"10.0.0.{i}", f"10.0.0.{i}", asn) for i, asn in enumerate(PEER_ASNS)]

    def attrs() -> PathAttributes:
        value = PathAttributes(
            as_path=rng.choice(paths),
            next_hop=f"10.0.0.{rng.randrange(1, 5)}",
            communities=rng.choice(community_sets),
        )
        if rng.random() < 0.3:
            value.med = rng.randrange(0, 500)
        if rng.random() < 0.2:
            value.local_pref = rng.randrange(50, 200)
        return value

    table = {
        index: {
            prefix: attrs() for prefix in rng.sample(v4_prefixes, rng.randrange(4, 9))
        }
        for index in range(len(peers))
    }
    rib_path = archive.path_for("ris", "rrc0", "ribs", 1000)
    write_rib_dump(rib_path, 1000, "198.51.100.9", peers, table)
    archive.publish("ris", "rrc0", "ribs", 1000, 60, rib_path, available_at=1100)

    messages = []
    timestamp = 1300
    for _ in range(25):
        timestamp += rng.randrange(0, 20)
        peer = rng.choice(peers)
        kind = rng.random()
        if kind < 0.55:
            announce_attrs = attrs()
            if rng.random() < 0.25:
                announce_attrs.mp_next_hop = "2001:db8::1"
                announce_attrs.mp_reach_nlri = [rng.choice(v6_prefixes)]
            update = BGPUpdate(
                announced=rng.sample(v4_prefixes, rng.randrange(1, 4)),
                attributes=announce_attrs,
            )
            body = BGP4MPMessage(peer.asn, 65535, peer.address, "198.51.100.9", update)
        elif kind < 0.85:
            update = BGPUpdate(withdrawn=rng.sample(v4_prefixes, rng.randrange(1, 3)))
            body = BGP4MPMessage(peer.asn, 65535, peer.address, "198.51.100.9", update)
        else:
            body = BGP4MPStateChange(
                peer.asn, 65535, peer.address, "198.51.100.9",
                SessionState.ESTABLISHED,
                rng.choice([SessionState.IDLE, SessionState.ESTABLISHED]),
            )
        messages.append((timestamp, body))
    upd_path = archive.path_for("ris", "rrc0", "updates", 1300)
    write_updates_dump(upd_path, messages)
    archive.publish("ris", "rrc0", "updates", 1300, 300, upd_path, available_at=1700)
    return archive


def _consume(archive, *, eager, interning=True, parallel=None, filter_spec=None):
    """Full pass over the archive, rendered every observable way."""
    clear_index_cache()
    reset_default_pool()
    with parse_interning(bool(interning)):
        stream = BGPStream(
            data_interface=BrokerDataInterface(
                Broker(archives=[archive]), max_empty_polls=1
            ),
            parallel=parallel,
            interning=interning,
            eager=eager,
        )
        if filter_spec is not None:
            stream.add_filter(*filter_spec)
        stream.add_interval_filter(900, 2500)
        record_lines, elems, elem_lines, field_dicts = [], [], [], []
        for record in stream.records():
            record_lines.append(record.to_ascii())
            for elem in record.elems():
                if not stream.filters.match_elem(elem):
                    continue
                elems.append(elem)
                elem_lines.append(elem.to_ascii())
                elem_lines.append(elem.to_bgpdump_ascii())
                field_dicts.append(elem.field_dict())
        return record_lines, elems, elem_lines, field_dicts


# ---------------------------------------------------------------------------
# The invisibility property: lazy × eager × interning × engine × filters
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    interning=st.booleans(),
    executor=st.sampled_from([None, "serial", "thread"]),
    filter_spec=st.sampled_from(
        [
            None,
            ("prefix", "10.0.0.0/9"),
            ("peer-asn", str(PEER_ASNS[0])),
            ("aspath", "_6.*$"),
            # Attribute-referencing terms: these force a lazy elem to
            # materialise its deferred attributes inside match_elem.
            ("origin-asn", "64513"),
            ("community", "65001:7"),
        ]
    ),
)
def test_lazy_tier_is_observably_invisible(seed, interning, executor, filter_spec):
    with tempfile.TemporaryDirectory() as root:
        archive = _build_archive(root, seed)
        parallel = (
            None if executor is None else ParallelConfig(executor=executor, batch_size=32)
        )
        reference = _consume(
            archive, eager=True, interning=interning, filter_spec=filter_spec
        )
        lazy = _consume(
            archive,
            eager=False,
            interning=interning,
            parallel=parallel,
            filter_spec=filter_spec,
        )
        assert lazy[0] == reference[0]  # record ASCII
        assert lazy[1] == reference[1]  # elems as dataclass values
        assert lazy[2] == reference[2]  # elem + bgpdump ASCII
        assert lazy[3] == reference[3]  # field_dict views
        if filter_spec is None:
            assert reference[1], "generator produced no elems — test is vacuous"


def test_lazy_equivalence_under_live_bmp_feed():
    """Live mode: the lazy tier's field_dict stream equals the eager one."""
    rng = random.Random(2016)
    paths = [_random_path(rng) for _ in range(4)]
    sequence = []
    for i in range(20):
        update = BGPUpdate(
            announced=[Prefix.from_string(f"203.0.{i}.0/24")],
            attributes=PathAttributes(
                as_path=rng.choice(paths),
                next_hop="10.1.2.3",
                communities=CommunitySet.from_pairs([(65001, i)]),
            ),
        )
        sequence.append((1000 + 10 * i, f"10.9.9.{i % 3}", 65001 + i % 3, update))

    def consume(eager):
        reset_default_pool()
        broker = MessageBroker()
        producer = BMPFeedProducer(broker, router="rtr1")
        for timestamp, address, asn, update in sequence:
            peer = BMPPeerHeader(address=address, asn=asn, timestamp_sec=timestamp)
            producer.publish(BMPMessage.route_monitoring(peer, update))
        stream = BGPStream(
            live={"broker": broker, "max_empty_polls": 1, "poll_interval": 0.0},
            eager=eager,
        )
        return [
            (record.time, elem.field_dict())
            for record in stream.records()
            for elem in record.elems()
        ]

    eager_out = consume(True)
    lazy_out = consume(False)
    assert eager_out
    assert lazy_out == eager_out


# ---------------------------------------------------------------------------
# Corruption parity: the same signal whichever tier decodes
# ---------------------------------------------------------------------------


def _outcome(call):
    try:
        return ("ok", call())
    except Exception as exc:  # noqa: BLE001 — parity check wants any class
        return ("raise", type(exc).__name__, str(exc))


def _encoded_update() -> bytes:
    return BGPUpdate(
        announced=[Prefix.from_string("192.0.2.0/24")],
        attributes=PathAttributes(
            as_path=ASPath.from_asns([65001, 65002]),
            next_hop="10.0.0.1",
            communities=CommunitySet.from_pairs([(65001, 7)]),
            med=10,
            local_pref=200,
        ),
    ).encode()


def test_corrupt_update_raises_identically_in_both_tiers():
    """Flipping any byte of an UPDATE yields the same outcome lazy vs eager."""
    wire = _encoded_update()
    for offset in range(19, len(wire)):  # skip the marker header: framing layer
        for flip in (0xFF, 0x01):
            mutated = bytearray(wire)
            mutated[offset] ^= flip
            mutated = bytes(mutated)
            with lazy_decoding(False):
                eager = _outcome(lambda: decode_update(mutated))
            with lazy_decoding(True):
                lazy = _outcome(lambda: _materialised_update(mutated))
            assert lazy == eager, f"divergence at offset {offset} flip {flip:#x}"


def _materialised_update(wire: bytes) -> BGPUpdate:
    update = decode_update(wire)
    update.attributes.encode()  # touch every deferred field
    return update


@pytest.mark.parametrize(
    "attr",
    [
        bytes([0x40, 1, 0]),  # ORIGIN with empty body -> IndexError
        bytes([0x40, 1, 1, 9]),  # ORIGIN 9 -> enum ValueError
        bytes([0x40, 2, 3, 2, 2, 0]),  # AS_PATH truncated segment body
        bytes([0x40, 2, 2, 9, 0]),  # AS_PATH unknown segment type
        bytes([0x40, 3, 2, 1, 2]),  # NEXT_HOP wrong length -> AddressValueError
        bytes([0x80, 4, 3, 0, 0, 1]),  # MED wrong length -> struct.error
        bytes([0xC0, 8, 3, 0, 0, 1]),  # COMMUNITIES not a multiple of 4
    ],
)
def test_deferred_validation_matches_eager_exception(attr):
    with lazy_decoding(False):
        eager = _outcome(lambda: PathAttributes.decode(attr))
    lazy = _outcome(lambda: LazyPathAttributes(attr))
    assert eager[0] == "raise"
    assert lazy[:2] == eager[:2]  # same exception class (messages may differ
    # only for checks the validator reproduces through the same call)


def test_corrupt_mrt_records_surface_identically(tmp_path):
    """Byte-flipped dump files parse to identical record/elem sequences."""
    rng = random.Random(7)
    with tempfile.TemporaryDirectory() as root:
        archive = _build_archive(root, 7)
        upd_path = archive.path_for("ris", "rrc0", "updates", 1300)
        wire = open(upd_path, "rb").read()
        offsets = rng.sample(range(len(wire)), 40)
        for case, offset in enumerate(offsets):
            mutated = bytearray(wire)
            mutated[offset] ^= 0xFF
            target = tmp_path / f"mutated-{case}.mrt"
            target.write_bytes(bytes(mutated))

            def render(eager):
                clear_index_cache()
                lines = []
                for record in read_dump(str(target), lazy=not eager):
                    if record.is_valid:
                        # Encoding a lazy body materialises every deferred
                        # attribute, so divergent decodes cannot hide.
                        lines.append((record.header.timestamp, record.encode()))
                    else:
                        lines.append((record.body.reason, bytes(record.body.raw)))
                return lines

            assert render(eager=False) == render(eager=True), f"offset {offset}"


def test_corrupt_bmp_frames_surface_identically():
    """Byte-flipped BMP buffers scan to identical message sequences."""
    rng = random.Random(11)
    peer = BMPPeerHeader(address="10.1.2.3", asn=65001, timestamp_sec=1000)
    frames = b"".join(
        BMPMessage.route_monitoring(
            peer,
            BGPUpdate(
                announced=[Prefix.from_string(f"198.51.{i}.0/24")],
                attributes=PathAttributes(
                    as_path=ASPath.from_asns([65001, 65000 + i]), next_hop="10.0.0.1"
                ),
            ),
        ).encode()
        for i in range(6)
    )

    def render(buffer, eager):
        out = []
        for message in scan_messages(buffer, lazy=not eager):
            if message.is_valid:
                body = message.body
                update = getattr(body, "update", None)
                out.append(
                    (
                        message.msg_type,
                        None if update is None else update.attributes.encode(),
                    )
                )
            else:
                out.append(("corrupt", message.body.reason, bytes(message.body.raw)))
        return out

    for offset in rng.sample(range(len(frames)), 50):
        mutated = bytearray(frames)
        mutated[offset] ^= 0xFF
        mutated = bytes(mutated)
        assert render(mutated, eager=False) == render(mutated, eager=True), f"offset {offset}"
    # Truncated tail parity with the incremental parser's kill reason.
    truncated = frames[: len(frames) - 3]
    lazy_scan = render(truncated, eager=False)
    assert lazy_scan == render(truncated, eager=True)
    assert lazy_scan[-1][1] == "truncated BMP message at end of stream"


# ---------------------------------------------------------------------------
# Lazy building blocks: deferral, interning, pickling, repeat-elems marker
# ---------------------------------------------------------------------------


def _attr_block() -> bytes:
    update = _encoded_update()
    # 19-byte header, withdrawn_len(2) == 0, attr_len(2), then the block.
    attr_len = int.from_bytes(update[21:23], "big")
    return update[23 : 23 + attr_len]


def test_lazy_attributes_defer_and_match_eager():
    block = _attr_block()
    eager = PathAttributes.decode(block)
    lazy = decode_attributes(block, lazy=True)
    assert type(lazy) is LazyPathAttributes
    assert lazy.deferred_types  # nothing read yet
    assert lazy == eager  # comparison materialises every field
    assert not lazy.deferred_types
    assert lazy.encode() == eager.encode()


def test_lazy_attributes_intern_on_materialisation():
    block = _attr_block()
    pool = InternPool()
    lazy = decode_attributes(block, lazy=True, pool=pool)
    canonical = pool.path(PathAttributes.decode(block).as_path)
    assert lazy.as_path is canonical
    assert lazy.communities is pool.communities(lazy.communities)


def test_lazy_attributes_pickle_to_plain_eager_class():
    lazy = decode_attributes(_attr_block(), lazy=True)
    clone = pickle.loads(pickle.dumps(lazy))
    assert type(clone) is PathAttributes
    assert clone == lazy


def test_lazy_elems_pickle_to_plain_elems(tmp_path):
    with tempfile.TemporaryDirectory() as root:
        archive = _build_archive(root, 3)
        clear_index_cache()
        reset_default_pool()
        stream = BGPStream(
            data_interface=BrokerDataInterface(
                Broker(archives=[archive]), max_empty_polls=1
            ),
            eager=False,
        )
        stream.add_interval_filter(900, 2500)
        elems = [elem for record in stream.records() for elem in record.elems()]
        assert elems
        assert any(type(e).__name__ == "LazyBGPElem" for e in elems)
        clones = pickle.loads(pickle.dumps(elems))
        assert [type(c).__name__ for c in clones] == ["BGPElem"] * len(clones)
        assert clones == elems


def test_repeated_elems_take_the_canonical_marker_fast_path():
    from repro.mrt.records import BGP4MPMessage as MRTMessage

    with tempfile.TemporaryDirectory() as root:
        archive = _build_archive(root, 5)
        clear_index_cache()
        reset_default_pool()
        stream = BGPStream(
            data_interface=BrokerDataInterface(
                Broker(archives=[archive]), max_empty_polls=1
            ),
        )
        stream.add_interval_filter(900, 2500)
        pool = stream.intern_pool
        marked = 0
        for record in stream.records():
            first = [elem.to_ascii() for elem in record.elems()]
            body = record.mrt.body if record.mrt is not None else None
            if (
                isinstance(body, MRTMessage)
                and body.update.announced
                and body.update.attributes.as_path is not None
            ):
                # The elem pass canonicalised the attrs and left the marker,
                # so the next pass short-circuits the write-back walk.
                assert body.update.attributes._canonical_for is pool
                marked += 1
            assert [elem.to_ascii() for elem in record.elems()] == first
        assert marked > 0


def test_attribute_filters_agree_between_lazy_and_eager_elems():
    """match_elem parity on filters that read deferred attributes.

    A lazy elem carries only the gate fields eagerly; origin-asn, aspath
    and community filters must transparently force materialisation and
    produce the same verdicts an eager elem gets — never silently match
    (or reject) on a missing field.
    """
    with tempfile.TemporaryDirectory() as root:
        archive = _build_archive(root, 17)
        for spec in [
            ("origin-asn", "64513"),
            ("aspath", "^65001"),
            ("aspath", "."),
            ("community", "65001:7"),
            ("community", "1:1"),
        ]:
            reference = _consume(archive, eager=True, filter_spec=spec)
            lazy = _consume(archive, eager=False, filter_spec=spec)
            assert lazy[1] == reference[1], spec
            assert lazy[3] == reference[3], spec
        # At least one spec above must actually admit elems, or the parity
        # claim is vacuous ("." matches every non-empty path string).
        assert _consume(archive, eager=False, filter_spec=("aspath", "."))[1]


def test_attribute_filters_materialise_only_past_the_prefix_gate():
    """Gate ordering: attribute-reading filter terms run after the trie.

    With a prefix filter that rejects everything, an additional origin-asn
    term must not cost a single materialisation — the cheap gates run
    first, so the lazy tier's deferral survives filtered fan-out (this is
    what keeps the gateway's per-subscriber match_elem cost independent of
    attribute decode).
    """
    with tempfile.TemporaryDirectory() as root:
        archive = _build_archive(root, 21)
        clear_index_cache()
        reset_default_pool()
        profiling.enable()
        try:
            stream = BGPStream(
                data_interface=BrokerDataInterface(
                    Broker(archives=[archive]), max_empty_polls=1
                ),
                eager=False,
            )
            stream.add_interval_filter(900, 2500)
            stream.add_filter("prefix-exact", "192.0.2.0/24")  # matches no elem
            stream.add_filter("origin-asn", "65001")
            matched = [
                elem
                for record in stream.records()
                for elem in record.elems()
                if stream.filters.match_elem(elem)
            ]
            stats = profiling.snapshot()
        finally:
            profiling.disable()
        assert not matched
        assert stats.lazy_elems > 0
        assert stats.elems_materialised == 0


def test_decode_stats_counters_report_the_deferral():
    with tempfile.TemporaryDirectory() as root:
        archive = _build_archive(root, 9)
        clear_index_cache()
        reset_default_pool()
        profiling.enable()
        try:
            stream = BGPStream(
                data_interface=BrokerDataInterface(
                    Broker(archives=[archive]), max_empty_polls=1
                ),
                eager=False,
            )
            stream.add_interval_filter(900, 2500)
            for record in stream.records():
                for _ in record.elems():
                    break  # touch at most one elem per record
            stats = profiling.snapshot()
            assert stats.records_scanned > 0
            assert stats.attr_blocks_deferred > 0
            assert stats.bytes_viewed > 0
            assert stats.lazy_elems > 0
            lines = "\n".join(stats.summary_lines())
            assert "attr blocks deferred" in lines
        finally:
            profiling.disable()
        assert profiling.counters is None


# ---------------------------------------------------------------------------
# CLI knobs
# ---------------------------------------------------------------------------


def test_bgpreader_eager_decode_and_decode_stats_flags(tmp_path, capsys):
    from repro.core import reader

    with tempfile.TemporaryDirectory() as root:
        archive = _build_archive(root, 13)
        dump = archive.path_for("ris", "rrc0", "updates", 1300)

        def lines(*extra):
            clear_index_cache()
            reset_default_pool()
            args = reader.build_parser().parse_args(
                ["--single-file", dump, *extra]
            )
            import io

            out = io.StringIO()
            assert reader.run(args, out) == 0
            return out.getvalue().splitlines()

        default_lines = lines()
        eager_lines = lines("--eager-decode")
        assert default_lines == eager_lines
        assert default_lines

        stats_lines = lines("--decode-stats")
        comments = [line for line in stats_lines if line.startswith("# ")]
        assert any("records scanned" in line for line in comments)
        assert any("attr blocks deferred" in line for line in comments)
        assert [line for line in stats_lines if not line.startswith("# ")] == default_lines

        eager_stats = lines("--decode-stats", "--eager-decode")
        assert any(
            "attr blocks deferred:     0" in line for line in eager_stats
        )
