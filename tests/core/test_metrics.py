"""The telemetry registry: exactness under threads, exposition goldens."""

import json
import io
import threading
import urllib.request

import pytest

from repro import _metrics
from repro.core import metrics
from repro.core.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def enabled():
    metrics.enable()
    yield
    metrics.disable()


# ---------------------------------------------------------------------------
# Concurrency exactness (the PR 7 intern-counter audit, applied here)
# ---------------------------------------------------------------------------


class TestConcurrencyExactness:
    THREADS = 8
    PER_THREAD = 25_000

    def test_counter_totals_exact_under_hammer(self, registry):
        counter = registry.counter("hammer_total", "Hammered.", labelnames=("lane",))
        barrier = threading.Barrier(self.THREADS)

        def hammer(lane):
            barrier.wait()
            for _ in range(self.PER_THREAD):
                counter.inc(lane=lane)
                counter.inc(2, lane="shared")

        threads = [
            threading.Thread(target=hammer, args=(f"lane{i}",))
            for i in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for i in range(self.THREADS):
            assert counter.labels(lane=f"lane{i}").value() == self.PER_THREAD
        # The shared child is the lost-update honeypot: 8 threads, one
        # series.  Per-thread shards make the total exact, not approximate.
        assert counter.labels(lane="shared").value() == self.THREADS * self.PER_THREAD * 2

    def test_histogram_counts_exact_under_hammer(self, registry):
        hist = registry.histogram("hammer_seconds", "Hammered.", buckets=(1.0, 10.0))
        barrier = threading.Barrier(self.THREADS)

        def hammer(offset):
            barrier.wait()
            for i in range(self.PER_THREAD):
                hist.observe(0.5 if i % 2 else 5.0)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        counts, total, count = hist.labels().snapshot()
        expected = self.THREADS * self.PER_THREAD
        assert count == expected
        assert counts[0] == expected // 2          # <= 1.0
        assert counts[1] == expected - expected // 2  # <= 10.0
        assert counts[2] == 0                      # +Inf overflow
        assert total == pytest.approx((0.5 + 5.0) * expected / 2)

    def test_gauge_inc_dec_locked(self, registry):
        gauge = registry.gauge("depth", "Depth.")
        barrier = threading.Barrier(self.THREADS)

        def churn():
            barrier.wait()
            for _ in range(10_000):
                gauge.inc()
                gauge.dec()

        threads = [threading.Thread(target=churn) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.labels().value() == 0


# ---------------------------------------------------------------------------
# Registration rules
# ---------------------------------------------------------------------------


class TestRegistration:
    def test_duplicate_names_rejected(self, registry):
        registry.counter("dup_total", "First.")
        with pytest.raises(ValueError, match="duplicate"):
            registry.counter("dup_total", "Second.")
        with pytest.raises(ValueError, match="duplicate"):
            registry.gauge("dup_total", "Different kind, same name.")

    def test_counter_requires_total_suffix(self, registry):
        with pytest.raises(ValueError, match="_total"):
            registry.counter("requests", "No suffix.")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.gauge("bad-name", "Dash.")
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.gauge("0leading", "Digit first.")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.gauge("ok_name", "Bad label.", labelnames=("bad-label",))
        with pytest.raises(ValueError, match="invalid label name"):
            registry.gauge("ok_name2", "Reserved label.", labelnames=("__reserved",))

    def test_counter_rejects_negative_and_wrong_labels(self, registry):
        counter = registry.counter("ops_total", "Ops.", labelnames=("kind",))
        with pytest.raises(ValueError, match="increase"):
            counter.inc(-1, kind="a")
        with pytest.raises(ValueError):
            counter.inc()  # missing label
        with pytest.raises(ValueError):
            counter.inc(kind="a", extra="b")

    def test_histogram_bucket_validation(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h1_seconds", "Unsorted.", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h2_seconds", "Dup bounds.", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h3_seconds", "Empty.", buckets=())
        # A trailing +Inf is accepted and folded into the implicit bucket.
        hist = registry.histogram("h4_seconds", "Inf.", buckets=(1.0, float("inf")))
        assert hist.buckets == (1.0,)


# ---------------------------------------------------------------------------
# Exposition-format goldens
# ---------------------------------------------------------------------------


class TestExpositionFormat:
    def test_counter_golden(self, registry):
        counter = registry.counter("requests_total", "Requests served.")
        counter.inc(3)
        assert registry.exposition() == (
            "# HELP requests_total Requests served.\n"
            "# TYPE requests_total counter\n"
            "requests_total 3\n"
        )

    def test_label_escaping_golden(self, registry):
        gauge = registry.gauge("g", "Help with \\ and\nnewline.", labelnames=("path",))
        gauge.set(1, path='a"b\\c\nd')
        assert registry.exposition() == (
            "# HELP g Help with \\\\ and\\nnewline.\n"
            "# TYPE g gauge\n"
            'g{path="a\\"b\\\\c\\nd"} 1\n'
        )

    def test_label_declaration_order_golden(self, registry):
        counter = registry.counter(
            "ops_total", "Ops.", labelnames=("zebra", "alpha")
        )
        counter.inc(zebra="z", alpha="a")
        text = registry.exposition()
        # Labels render in declaration order, not alphabetical.
        assert 'ops_total{zebra="z",alpha="a"} 1' in text

    def test_histogram_cumulative_buckets_golden(self, registry):
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert registry.exposition() == (
            "# HELP lat_seconds Latency.\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 1\n'
            'lat_seconds_bucket{le="1"} 3\n'
            'lat_seconds_bucket{le="10"} 4\n'
            'lat_seconds_bucket{le="+Inf"} 5\n'
            "lat_seconds_sum 56.05\n"
            "lat_seconds_count 5\n"
        )

    def test_boundary_observation_is_inclusive(self, registry):
        hist = registry.histogram("b_seconds", "Boundary.", buckets=(1.0,))
        hist.observe(1.0)  # le="1.0" means <=, so it lands inside
        text = registry.exposition()
        assert 'b_seconds_bucket{le="1"} 1' in text
        assert 'b_seconds_bucket{le="+Inf"} 1' in text

    def test_labeled_histogram_buckets_carry_labels(self, registry):
        hist = registry.histogram(
            "s_seconds", "Stages.", labelnames=("stage",), buckets=(1.0,)
        )
        hist.observe(0.5, stage="poll")
        text = registry.exposition()
        assert 's_seconds_bucket{stage="poll",le="1"} 1' in text
        assert 's_seconds_sum{stage="poll"} 0.5' in text
        assert 's_seconds_count{stage="poll"} 1' in text

    def test_unlabeled_metrics_render_zero_without_activity(self, registry):
        registry.counter("idle_total", "Never touched.")
        registry.gauge("idle_depth", "Never touched.")
        text = registry.exposition()
        assert "idle_total 0" in text
        assert "idle_depth 0" in text

    def test_families_sorted_by_name(self, registry):
        registry.counter("zz_total", "Last.")
        registry.counter("aa_total", "First.")
        text = registry.exposition()
        assert text.index("aa_total") < text.index("zz_total")


# ---------------------------------------------------------------------------
# Enabled flag, spans, collectors
# ---------------------------------------------------------------------------


class TestEnableDisable:
    def test_module_flag_round_trip(self):
        assert metrics.enabled is False
        metrics.enable()
        try:
            assert metrics.enabled is True
            assert _metrics.enabled is True
        finally:
            metrics.disable()
        assert metrics.enabled is False

    def test_trace_span_noop_when_disabled(self):
        before = _metrics.stage_latency.labels("poll").snapshot()[2]
        with metrics.trace_span("poll"):
            pass
        assert _metrics.stage_latency.labels("poll").snapshot()[2] == before

    def test_trace_span_observes_when_enabled(self, enabled):
        before = _metrics.stage_latency.labels("decode").snapshot()[2]
        with metrics.trace_span("decode"):
            pass
        assert _metrics.stage_latency.labels("decode").snapshot()[2] == before + 1

    def test_trace_span_accepts_unknown_stage(self, enabled):
        with metrics.trace_span("custom_stage"):
            pass
        assert _metrics.stage_latency.labels("custom_stage").snapshot()[2] >= 1


class TestCollectors:
    def test_unbound_collector_runs_each_collect(self, registry):
        gauge = registry.gauge("sampled", "Sampled.", collected=True)
        calls = []
        registry.add_collector(lambda: (calls.append(1), gauge.set(len(calls)))[0])
        registry.collect()
        registry.collect()
        assert len(calls) == 2
        assert gauge.labels().value() == 2

    def test_collected_metrics_reset_each_cycle(self, registry):
        counter = registry.counter("bridged_total", "Bridged.", collected=True)
        registry.add_collector(lambda: counter.add_total(7))
        assert "bridged_total 7" in registry.exposition()
        # Not 14: collected families reset before collectors repopulate.
        assert "bridged_total 7" in registry.exposition()

    def test_weakref_collector_pruned_with_owner(self, registry):
        gauge = registry.gauge("owned", "Owned.", collected=True)

        class Owner:
            def collect(self):
                gauge.inc(5)

        owner = Owner()
        registry.add_collector(Owner.collect, owner=owner)
        registry.collect()
        assert gauge.labels().value() == 5
        del owner
        registry.collect()
        assert gauge.labels().value() == 0  # reset, and nobody repopulated

    def test_snapshot_shape(self, registry):
        counter = registry.counter("s_total", "Snap.", labelnames=("kind",))
        counter.inc(kind="a")
        hist = registry.histogram("s_seconds", "Snap.", buckets=(1.0,))
        hist.observe(0.5)
        snap = registry.snapshot()
        assert snap["s_total"]['{kind="a"}'] == 1
        assert snap["s_seconds"][""] == 1
        assert snap["s_seconds"][":sum"] == 0.5


# ---------------------------------------------------------------------------
# The scrape server and the log emitter
# ---------------------------------------------------------------------------


class TestOutputSurfaces:
    def test_standalone_scrape_server(self, registry):
        registry.counter("scrape_total", "Scraped.").inc(4)
        server = metrics.start_metrics_server(0, registry=registry)
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics", timeout=5
            ) as response:
                assert response.status == 200
                assert "0.0.4" in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
            assert "scrape_total 4" in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=5
                )
        finally:
            server.close()

    def test_log_emitter_final_line(self, registry):
        registry.counter("emitted_total", "Emitted.").inc(2)
        out = io.StringIO()
        emitter = metrics.MetricsLogEmitter(out, interval=3600.0, registry=registry)
        emitter.start()
        emitter.stop()
        lines = [line for line in out.getvalue().splitlines() if line]
        assert len(lines) == 1
        body = json.loads(lines[0])
        assert body["event"] == "metrics"
        assert body["metrics"]["emitted_total"][""] == 2

    def test_log_emitter_rejects_bad_interval(self, registry):
        with pytest.raises(ValueError):
            metrics.MetricsLogEmitter(io.StringIO(), interval=0, registry=registry)
