"""Filter handling of the local-file data interfaces (ISSUE 5 satellite).

``CSVFileDataInterface`` and ``SQLiteDataInterface`` prune dump files before
the stream ever opens them — collector/project/type filters and the time
window must be applied at the meta-data level (via ``_spec_matches`` for the
CSV flavour, via the SQL query for SQLite).  Also covers the named-interface
registry.
"""

from __future__ import annotations

import pytest

from repro.broker.db import DumpFileRecord, MetadataDB
from repro.core.filters import FilterSet
from repro.core.interfaces import (
    BrokerDataInterface,
    CSVFileDataInterface,
    DumpFileSpec,
    LiveDataInterface,
    SingleFileDataInterface,
    SQLiteDataInterface,
    _spec_matches,
    make_data_interface,
    register_data_interface,
)

FILES = [
    # project, collector, dump_type, timestamp, duration, path
    ("ris", "rrc00", "ribs", 900, 0, "/dumps/rrc00.ribs.900"),
    ("ris", "rrc00", "updates", 1000, 300, "/dumps/rrc00.updates.1000"),
    ("ris", "rrc01", "updates", 1300, 300, "/dumps/rrc01.updates.1300"),
    ("routeviews", "route-views2", "updates", 1600, 300, "/dumps/rv2.updates.1600"),
]


def filter_set(collectors=(), projects=(), types=(), start=None, end=None):
    filters = FilterSet()
    for collector in collectors:
        filters.add("collector", collector)
    for project in projects:
        filters.add("project", project)
    for dump_type in types:
        filters.add("record-type", dump_type)
    filters.interval_start = start
    filters.interval_end = end
    return filters


@pytest.fixture()
def csv_interface(tmp_path):
    path = tmp_path / "index.csv"
    lines = ["# project,collector,dump_type,timestamp,duration,path"]
    lines += [",".join(str(v) for v in row) for row in FILES]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return CSVFileDataInterface(str(path))


@pytest.fixture()
def sqlite_interface(tmp_path):
    path = str(tmp_path / "broker.db")
    db = MetadataDB(path)
    db.insert_many(DumpFileRecord(*row, available_at=0.0) for row in FILES)
    db.close()
    return SQLiteDataInterface(path)


def paths(interface, filters):
    return [spec.path for batch in interface.batches(filters) for spec in batch]


@pytest.mark.parametrize("fixture", ["csv_interface", "sqlite_interface"])
class TestFileInterfaceFiltering:
    def test_no_filters_returns_everything_time_sorted(self, fixture, request):
        interface = request.getfixturevalue(fixture)
        assert paths(interface, FilterSet()) == [row[5] for row in FILES]

    def test_collector_pruning(self, fixture, request):
        interface = request.getfixturevalue(fixture)
        assert paths(interface, filter_set(collectors=["rrc01"])) == [
            "/dumps/rrc01.updates.1300"
        ]

    def test_project_pruning(self, fixture, request):
        interface = request.getfixturevalue(fixture)
        assert paths(interface, filter_set(projects=["routeviews"])) == [
            "/dumps/rv2.updates.1600"
        ]

    def test_record_type_pruning(self, fixture, request):
        interface = request.getfixturevalue(fixture)
        assert paths(interface, filter_set(types=["ribs"])) == ["/dumps/rrc00.ribs.900"]

    def test_time_window_pruning(self, fixture, request):
        interface = request.getfixturevalue(fixture)
        # A file overlaps the window when its [timestamp, timestamp+duration]
        # interval does: the rrc00 updates file (1000..1300) still overlaps a
        # window starting at 1200; the ribs file (ending at 900) and the rv2
        # file (starting 1600) are out.
        assert paths(interface, filter_set(start=1200, end=1500)) == [
            "/dumps/rrc00.updates.1000",
            "/dumps/rrc01.updates.1300",
        ]
        assert paths(interface, filter_set(start=1301, end=None)) == [
            "/dumps/rrc01.updates.1300",
            "/dumps/rv2.updates.1600",
        ]

    def test_combined_filters(self, fixture, request):
        interface = request.getfixturevalue(fixture)
        filters = filter_set(collectors=["rrc00"], types=["updates"], start=900, end=1100)
        assert paths(interface, filters) == ["/dumps/rrc00.updates.1000"]

    def test_nothing_matching_yields_no_batches(self, fixture, request):
        interface = request.getfixturevalue(fixture)
        assert list(interface.batches(filter_set(collectors=["nope"]))) == []


class TestCSVParsing:
    def test_comments_and_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "index.csv"
        path.write_text(
            "# header comment\n"
            "\n"
            "ris,rrc00,updates,1000,300,/dumps/a\n",
            encoding="utf-8",
        )
        interface = CSVFileDataInterface(str(path))
        assert paths(interface, FilterSet()) == ["/dumps/a"]

    def test_rows_are_sorted_by_time(self, tmp_path):
        path = tmp_path / "index.csv"
        path.write_text(
            "ris,rrc00,updates,2000,300,/dumps/late\n"
            "ris,rrc00,updates,1000,300,/dumps/early\n",
            encoding="utf-8",
        )
        interface = CSVFileDataInterface(str(path))
        assert paths(interface, FilterSet()) == ["/dumps/early", "/dumps/late"]


class TestSpecMatches:
    SPEC = DumpFileSpec(
        path="/d/x",
        project="ris",
        collector="rrc00",
        dump_type="updates",
        timestamp=1000,
        duration=300,
    )

    def test_empty_filters_match(self):
        assert _spec_matches(self.SPEC, FilterSet())

    def test_window_edges_are_inclusive(self):
        # ends exactly at the window start / starts exactly at the window end
        assert _spec_matches(self.SPEC, filter_set(start=1300, end=None))
        assert _spec_matches(self.SPEC, filter_set(start=None, end=1000))
        assert not _spec_matches(self.SPEC, filter_set(start=1301, end=None))
        assert not _spec_matches(self.SPEC, filter_set(start=None, end=999))


class TestRegistry:
    def test_singlefile_factory(self, tmp_path):
        interface = make_data_interface(
            "singlefile", path=str(tmp_path / "f.mrt"), dump_type="ribs"
        )
        assert isinstance(interface, SingleFileDataInterface)
        assert interface.spec.dump_type == "ribs"

    def test_csv_and_sqlite_factories(self, tmp_path):
        assert isinstance(
            make_data_interface("csvfile", path=str(tmp_path / "i.csv")),
            CSVFileDataInterface,
        )
        assert isinstance(
            make_data_interface("sqlite", path=str(tmp_path / "b.db")),
            SQLiteDataInterface,
        )

    def test_broker_factory_from_archive(self, tmp_path):
        interface = make_data_interface("broker", archive=str(tmp_path))
        assert isinstance(interface, BrokerDataInterface)

    def test_factories_require_their_path(self):
        for name in ("csvfile", "sqlite", "singlefile"):
            with pytest.raises(ValueError, match="needs"):
                make_data_interface(name)
        with pytest.raises(ValueError, match="needs"):
            make_data_interface("broker")

    def test_instances_pass_through(self, tmp_path):
        instance = CSVFileDataInterface(str(tmp_path / "i.csv"))
        assert make_data_interface(instance) is instance
        with pytest.raises(ValueError, match="registry name"):
            make_data_interface(instance, path="x")

    def test_custom_registration(self, tmp_path):
        sentinel = CSVFileDataInterface(str(tmp_path / "i.csv"))
        register_data_interface("custom-test", lambda: sentinel)
        try:
            assert make_data_interface("custom-test") is sentinel
        finally:
            from repro.core.interfaces import _INTERFACE_REGISTRY

            _INTERFACE_REGISTRY.pop("custom-test", None)

    def test_kafka_name_builds_live_interface(self):
        from repro.kafka.broker import MessageBroker

        interface = make_data_interface("kafka", broker=MessageBroker())
        assert isinstance(interface, LiveDataInterface)
