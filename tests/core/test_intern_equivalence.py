"""Interning must be observably invisible (property test).

For a randomized record stream, the elems produced with flyweight interning
enabled must be *identical* — as dataclass values, as ASCII lines and as
``field_dict()`` views — to the elems produced with interning fully
disabled, in both the sequential and the parallel engine.  Interning may
only change object identity and memory behaviour, never semantics.
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.aspath import ASPath, ASPathSegment, SegmentType
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import CommunitySet
from repro.bgp.fsm import SessionState
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.broker.broker import Broker
from repro.collectors.archive import Archive
from repro.core.interfaces import BrokerDataInterface
from repro.core.intern import parse_interning, reset_default_pool
from repro.core.parallel import ParallelConfig
from repro.core.stream import BGPStream
from repro.mrt.parser import clear_index_cache
from repro.mrt.records import BGP4MPMessage, BGP4MPStateChange, PeerEntry
from repro.mrt.writer import write_rib_dump, write_updates_dump


def _random_path(rng: random.Random) -> ASPath:
    segments = [
        ASPathSegment(
            SegmentType.AS_SEQUENCE,
            tuple(rng.randrange(1, 65000) for _ in range(rng.randrange(1, 5))),
        )
    ]
    if rng.random() < 0.3:
        segments.append(
            ASPathSegment(
                SegmentType.AS_SET,
                tuple(sorted({rng.randrange(64512, 64600) for _ in range(2)})),
            )
        )
    return ASPath(tuple(segments))


def _random_communities(rng: random.Random) -> CommunitySet:
    return CommunitySet.from_pairs(
        (rng.randrange(1, 65000), rng.randrange(0, 1000))
        for _ in range(rng.randrange(0, 4))
    )


def _build_archive(tmp_path, seed: int) -> Archive:
    """A two-collector archive with RIBs, updates, MP-reach and state msgs."""
    rng = random.Random(seed)
    archive = Archive(str(tmp_path / f"equiv-{seed}"))
    paths = [_random_path(rng) for _ in range(10)]
    community_sets = [_random_communities(rng) for _ in range(6)]
    v4_prefixes = [
        Prefix.from_string(f"10.{rng.randrange(256)}.{rng.randrange(256)}.0/24")
        for _ in range(30)
    ]
    v6_prefixes = [Prefix.from_string(f"2001:db8:{i:x}::/48") for i in range(4)]

    for collector in ("rrc0", "rrc1"):
        peers = [
            PeerEntry(f"10.0.{c}.{i}", f"10.0.{c}.{i}", 64500 + 10 * c + i)
            for c, i in [(int(collector[-1]), i) for i in range(3)]
        ]
        table = {}
        for index in range(len(peers)):
            table[index] = {
                prefix: PathAttributes(
                    as_path=rng.choice(paths),
                    next_hop=f"10.0.0.{rng.randrange(1, 5)}",
                    communities=rng.choice(community_sets),
                )
                for prefix in rng.sample(v4_prefixes, rng.randrange(8, 20))
            }
        rib_path = archive.path_for("ris", collector, "ribs", 1000)
        write_rib_dump(rib_path, 1000, "198.51.100.9", peers, table)
        archive.publish("ris", collector, "ribs", 1000, 60, rib_path, available_at=1100)

        messages = []
        timestamp = 1300
        for _ in range(40):
            timestamp += rng.randrange(0, 20)
            peer = rng.choice(peers)
            kind = rng.random()
            if kind < 0.55:  # announcement (sometimes with an IPv6 MP_REACH)
                attrs = PathAttributes(
                    as_path=rng.choice(paths),
                    next_hop=f"10.0.0.{rng.randrange(1, 5)}",
                    communities=rng.choice(community_sets),
                )
                announced = rng.sample(v4_prefixes, rng.randrange(1, 4))
                if rng.random() < 0.25:
                    attrs.mp_next_hop = "2001:db8::1"
                    attrs.mp_reach_nlri = [rng.choice(v6_prefixes)]
                update = BGPUpdate(announced=announced, attributes=attrs)
                body = BGP4MPMessage(peer.asn, 65535, peer.address, "198.51.100.9", update)
            elif kind < 0.85:  # withdrawal
                update = BGPUpdate(withdrawn=rng.sample(v4_prefixes, rng.randrange(1, 3)))
                body = BGP4MPMessage(peer.asn, 65535, peer.address, "198.51.100.9", update)
            else:  # session state change
                body = BGP4MPStateChange(
                    peer.asn, 65535, peer.address, "198.51.100.9",
                    SessionState.ESTABLISHED,
                    rng.choice([SessionState.IDLE, SessionState.ESTABLISHED]),
                )
            messages.append((timestamp, body))
        upd_path = archive.path_for("ris", collector, "updates", 1300)
        write_updates_dump(upd_path, messages)
        archive.publish("ris", collector, "updates", 1300, 300, upd_path, available_at=1700)
    return archive


def _consume(archive, *, interning, parallel=None):
    """Records + elems of a full pass, rendered every observable way."""
    clear_index_cache()
    reset_default_pool()
    with parse_interning(bool(interning)):
        stream = BGPStream(
            data_interface=BrokerDataInterface(Broker(archives=[archive]), max_empty_polls=1),
            parallel=parallel,
            interning=interning,
        )
        stream.add_interval_filter(900, 2500)
        record_lines = []
        elems = []
        elem_lines = []
        field_dicts = []
        for record in stream.records():
            record_lines.append(record.to_ascii())
            for elem in record.elems():
                elems.append(elem)
                elem_lines.append(elem.to_ascii())
                elem_lines.append(elem.to_bgpdump_ascii())
                field_dicts.append(elem.field_dict())
        return record_lines, elems, elem_lines, field_dicts


@pytest.mark.parametrize("seed", [2016, 42, 7])
def test_interning_preserves_observable_semantics(tmp_path, seed):
    archive = _build_archive(tmp_path, seed)
    with_pool = _consume(archive, interning=True)
    without_pool = _consume(archive, interning=False)

    assert with_pool[0] == without_pool[0]  # record ASCII
    assert with_pool[1] == without_pool[1]  # elems as dataclass values
    assert with_pool[2] == without_pool[2]  # elem + bgpdump ASCII
    assert with_pool[3] == without_pool[3]  # field_dict views
    assert with_pool[1], "generator produced no elems — test is vacuous"


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_interning_equivalence_under_parallel(tmp_path, executor):
    """The parallel engine with interning on emits the exact elem sequence of
    the uninterned sequential reference."""
    archive = _build_archive(tmp_path, 1234)
    reference = _consume(archive, interning=False)
    config = ParallelConfig(executor=executor, batch_size=64)
    parallel_on = _consume(archive, interning=True, parallel=config)
    off_config = ParallelConfig(executor=executor, batch_size=64, intern=False)
    parallel_off = _consume(archive, interning=False, parallel=off_config)

    assert parallel_on[1] == reference[1]
    assert parallel_on[2] == reference[2]
    assert parallel_off[1] == reference[1]
    assert parallel_off[3] == reference[3]
    assert reference[1]


def test_stream_interning_false_disables_parse_dedup(tmp_path):
    """BGPStream(interning=False) opts its own readers out of decode-time
    interning too — the process-wide default pool stays untouched."""
    from repro.core.intern import default_pool

    archive = _build_archive(tmp_path, 555)
    clear_index_cache()
    reset_default_pool()
    stream = BGPStream(
        data_interface=BrokerDataInterface(Broker(archives=[archive]), max_empty_polls=1),
        interning=False,
    )
    stream.add_interval_filter(900, 2500)
    elems = [elem for record in stream.records() for elem in record.elems()]
    assert elems
    assert sum(default_pool().sizes().values()) == 0

    # Same stream with interning on: the pool fills and paths are shared.
    clear_index_cache()
    reset_default_pool()
    stream = BGPStream(
        data_interface=BrokerDataInterface(Broker(archives=[archive]), max_empty_polls=1),
        interning=True,
    )
    stream.add_interval_filter(900, 2500)
    interned_elems = [elem for record in stream.records() for elem in record.elems()]
    assert interned_elems == elems
    assert default_pool().sizes()["path"] > 0


def test_private_pool_isolates_from_default_pool(tmp_path):
    """BGPStream(interning=InternPool()) is isolation: the stream's values
    are canonicalised through its own pool and the process-wide default pool
    stays untouched (decode-time interning is switched off for its reads)."""
    from repro.core.intern import InternPool, default_pool

    archive = _build_archive(tmp_path, 777)
    clear_index_cache()
    reset_default_pool()
    private = InternPool()
    stream = BGPStream(
        data_interface=BrokerDataInterface(Broker(archives=[archive]), max_empty_polls=1),
        interning=private,
    )
    stream.add_interval_filter(900, 2500)
    elems = [elem for record in stream.records() for elem in record.elems()]
    assert elems
    assert sum(default_pool().sizes().values()) == 0
    assert private.sizes()["path"] > 0
    # Elems sharing an AS path share the private pool's canonical object.
    by_value = {}
    for elem in elems:
        if elem.as_path is not None:
            by_value.setdefault(str(elem.as_path), set()).add(id(elem.as_path))
    assert all(len(ids) == 1 for ids in by_value.values())
