"""Tests for dump-file reading, subset grouping and the multi-way merge."""

from __future__ import annotations

import os
import random
from collections import Counter

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.interfaces import DumpFileSpec
from repro.core.parallel import ParallelConfig, ParallelStreamEngine
from repro.core.record import DumpPosition, RecordStatus
from repro.core.sorter import DumpFileReader, SortedRecordMerger
from repro.mrt.records import BGP4MPMessage
from repro.mrt.writer import corrupt_file, write_updates_dump


def _write_updates(path, timestamps, peer_asn=64500):
    prefix = Prefix.from_string("192.0.2.0/24")
    attrs = PathAttributes(as_path=ASPath.from_asns([peer_asn, 15169]), next_hop="10.0.0.1")
    messages = [
        (
            ts,
            BGP4MPMessage(
                peer_asn, 65000, "10.0.0.1", "10.0.0.2",
                BGPUpdate(announced=[prefix], attributes=attrs),
            ),
        )
        for ts in timestamps
    ]
    write_updates_dump(path, messages)


def _spec(path, timestamp, duration=300, collector="rrc0", project="ris", dump_type="updates"):
    return DumpFileSpec(
        path=path,
        project=project,
        collector=collector,
        dump_type=dump_type,
        timestamp=timestamp,
        duration=duration,
    )


class TestDumpFileReader:
    def test_positions_and_annotations(self, tmp_path):
        path = str(tmp_path / "u.mrt")
        _write_updates(path, [100, 110, 120])
        records = list(DumpFileReader(_spec(path, 100)))
        assert [r.dump_position for r in records] == [
            DumpPosition.START,
            DumpPosition.MIDDLE,
            DumpPosition.END,
        ]
        assert all(r.project == "ris" and r.collector == "rrc0" for r in records)
        assert all(r.dump_type == "updates" for r in records)
        assert all(r.status == RecordStatus.VALID for r in records)

    def test_missing_file_yields_corrupted_source(self, tmp_path):
        records = list(DumpFileReader(_spec(str(tmp_path / "missing.mrt"), 0)))
        assert len(records) == 1
        assert records[0].status == RecordStatus.CORRUPTED_SOURCE
        assert records[0].time == 0  # falls back to the dump time
        assert list(records[0].elems()) == []

    def test_empty_file_yields_empty_source(self, tmp_path):
        path = str(tmp_path / "empty.mrt")
        write_updates_dump(path, [])
        records = list(DumpFileReader(_spec(path, 50)))
        assert len(records) == 1
        assert records[0].status == RecordStatus.EMPTY_SOURCE

    def test_truncated_file_yields_corrupted_record(self, tmp_path):
        path = str(tmp_path / "u.mrt")
        _write_updates(path, [100, 110, 120])
        corrupt_file(path, truncate_at=os.path.getsize(path) - 5)
        records = list(DumpFileReader(_spec(path, 100)))
        assert records[0].status == RecordStatus.VALID
        assert records[-1].status == RecordStatus.CORRUPTED_RECORD
        assert records[-1].dump_position == DumpPosition.END

    def test_single_record_dump_marked_end(self, tmp_path):
        path = str(tmp_path / "one.mrt")
        _write_updates(path, [42])
        records = list(DumpFileReader(_spec(path, 42)))
        assert len(records) == 1
        assert records[0].dump_position == DumpPosition.END


class TestSubsetGrouping:
    def test_figure3_style_grouping(self, tmp_path):
        """Files with overlapping intervals merge; disjoint ones do not."""
        # Two "collectors": RIS-style 5-minute files and RV-style 15-minute file,
        # then a later, disjoint file.
        layout = [
            (0, 300), (300, 300), (600, 300),   # rrc0 updates
            (0, 900),                            # route-views updates (overlaps all three)
            (3600, 300),                         # later, disjoint
        ]
        specs = []
        for index, (start, duration) in enumerate(layout):
            path = str(tmp_path / f"f{index}.mrt")
            _write_updates(path, [start + 10, start + duration - 10])
            specs.append(_spec(path, start, duration, collector=f"c{index}"))
        merger = SortedRecordMerger(specs)
        sizes = merger.subset_sizes()
        assert sizes == [4, 1]

    def test_empty_set(self):
        assert SortedRecordMerger([]).subsets() == []
        assert list(SortedRecordMerger([])) == []


class TestMultiWayMerge:
    def test_records_sorted_across_overlapping_files(self, tmp_path):
        specs = []
        expectations = []
        for index, timestamps in enumerate([[0, 60, 300], [30, 90, 250], [10, 200, 290]]):
            path = str(tmp_path / f"m{index}.mrt")
            _write_updates(path, timestamps, peer_asn=64500 + index)
            specs.append(_spec(path, 0, 300, collector=f"c{index}"))
            expectations.extend(timestamps)
        merged = list(SortedRecordMerger(specs))
        times = [r.time for r in merged]
        assert times == sorted(expectations)

    def test_merge_preserves_all_records(self, tmp_path):
        specs = []
        total = 0
        for index in range(5):
            timestamps = list(range(index, 100 + index, 7))
            path = str(tmp_path / f"n{index}.mrt")
            _write_updates(path, timestamps)
            specs.append(_spec(path, 0, 120, collector=f"c{index}"))
            total += len(timestamps)
        merged = list(SortedRecordMerger(specs))
        assert len(merged) == total

    def test_merge_with_unreadable_file_still_reports_it(self, tmp_path):
        good = str(tmp_path / "good.mrt")
        _write_updates(good, [10, 20])
        specs = [
            _spec(good, 0, 300, collector="good"),
            _spec(str(tmp_path / "missing.mrt"), 0, 300, collector="bad"),
        ]
        merged = list(SortedRecordMerger(specs))
        statuses = [r.status for r in merged]
        assert statuses.count(RecordStatus.CORRUPTED_SOURCE) == 1
        assert statuses.count(RecordStatus.VALID) == 2

    def test_equal_timestamp_merge_order_is_stable(self, tmp_path):
        """Equal-timestamp records resolve by file position, reproducibly."""
        specs = []
        for index in range(4):
            path = str(tmp_path / f"tie{index}.mrt")
            _write_updates(path, [100, 100, 200], peer_asn=64500 + index)
            specs.append(_spec(path, 0, 300, collector=f"c{index}"))
        reference = [(r.time, r.collector) for r in SortedRecordMerger(specs)]
        for _ in range(3):
            assert [(r.time, r.collector) for r in SortedRecordMerger(specs)] == reference
        # Ties resolve by file position: each file's run of equal timestamps
        # drains before the next file's (the head of file i keeps winning the
        # (time, index) tie until its timestamp advances).
        assert reference[:8] == [(100, f"c{i}") for i in range(4) for _ in range(2)]


def _record_key(record):
    """Full identity of a record for order-sensitive comparisons."""
    return (
        record.time,
        record.project,
        record.collector,
        record.dump_type,
        str(record.status),
        str(record.dump_position),
        record.mrt.encode() if record.mrt is not None else None,
    )


def _random_file_set(rng, directory):
    """A random set of overlapping/disjoint dump files; returns (specs, written).

    ``written`` is the multiset of (timestamp, peer_asn) pairs written into
    valid update records across all files.
    """
    specs = []
    written = []
    num_files = rng.randint(2, 8)
    for index in range(num_files):
        start = rng.randrange(0, 2000, 100)
        duration = rng.choice([100, 300, 900])
        count = rng.randint(0, 12)
        peer_asn = 64500 + index
        timestamps = sorted(rng.randint(start, start + duration - 1) for _ in range(count))
        suffix = ".mrt.gz" if rng.random() < 0.25 else ".mrt"
        path = str(directory / f"r{index}{suffix}")
        _write_updates(path, timestamps, peer_asn=peer_asn)
        specs.append(
            _spec(path, start, duration, collector=f"c{index}", project=rng.choice(["ris", "rv"]))
        )
        written.extend((ts, peer_asn) for ts in timestamps)
    return specs, written


class TestMergeProperties:
    """Randomized properties of the sorted merge (§3.3.4) and its parallel twin."""

    @pytest.mark.parametrize("seed", range(8))
    def test_merge_is_sorted_and_a_permutation_of_the_inputs(self, tmp_path, seed):
        rng = random.Random(seed)
        specs, written = _random_file_set(rng, tmp_path)
        merged = list(SortedRecordMerger(specs))

        times = [r.time for r in merged]
        assert times == sorted(times), "merged stream must be non-decreasing in time"

        valid = [r for r in merged if r.status == RecordStatus.VALID]
        observed = Counter((r.time, r.mrt.body.peer_asn) for r in valid)
        assert observed == Counter(written), "merge must be a permutation of the inputs"

        # Every record written is accounted for, plus exactly one
        # EMPTY_SOURCE marker per record-less file.
        empty_files = len(specs) - len({asn for _, asn in written})
        empties = sum(1 for r in merged if r.status == RecordStatus.EMPTY_SOURCE)
        assert empties == empty_files
        assert len(merged) == len(written) + empty_files

    @pytest.mark.parametrize("seed", range(8))
    def test_batched_and_parallel_paths_match_sequential(self, tmp_path, seed):
        rng = random.Random(1000 + seed)
        specs, _ = _random_file_set(rng, tmp_path)
        reference = [_record_key(r) for r in SortedRecordMerger(specs)]

        batch_size = rng.choice([1, 2, 7, 64])
        batched = [
            _record_key(r)
            for batch in SortedRecordMerger(specs).iter_batches(batch_size)
            for r in batch
        ]
        assert batched == reference

        for executor in ("serial", "thread"):
            engine = ParallelStreamEngine(
                ParallelConfig(executor=executor, batch_size=batch_size, max_workers=3)
            )
            parallel = [_record_key(r) for b in engine.iter_batches(specs) for r in b]
            assert parallel == reference, f"{executor} path diverged from sequential merge"

    def test_process_pool_path_matches_sequential(self, tmp_path):
        rng = random.Random(42)
        specs, _ = _random_file_set(rng, tmp_path)
        reference = [_record_key(r) for r in SortedRecordMerger(specs)]
        with ParallelStreamEngine(ParallelConfig(executor="process", max_workers=2)) as engine:
            assert [_record_key(r) for r in engine.iter_records(specs)] == reference

    def test_engine_pool_is_reused_and_survives_close(self, tmp_path):
        rng = random.Random(7)
        specs, _ = _random_file_set(rng, tmp_path)
        reference = [_record_key(r) for r in SortedRecordMerger(specs)]
        engine = ParallelStreamEngine(ParallelConfig(executor="thread", max_workers=2))
        assert [_record_key(r) for r in engine.iter_records(specs)] == reference
        pool = engine._executor
        assert pool is not None
        assert [_record_key(r) for r in engine.iter_records(specs)] == reference
        assert engine._executor is pool, "pool must be reused across runs"
        engine.close()
        engine.close()  # idempotent
        # A closed engine recreates its pool on next use.
        assert [_record_key(r) for r in engine.iter_records(specs)] == reference
        assert engine._executor is not pool
        engine.close()
