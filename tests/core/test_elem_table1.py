"""E1 — Table 1: the BGPStream elem fields and their conditional population.

The paper's Table 1 defines the elem structure: type, time, peer address,
peer ASN, and the conditionally-populated prefix, next hop, AS path,
communities, old state and new state.  These tests assert that every elem
type carries exactly the fields Table 1 says it should.
"""

from __future__ import annotations

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.community import Community, CommunitySet
from repro.bgp.fsm import SessionState
from repro.bgp.prefix import Prefix
from repro.core.elem import BGPElem, ElemType
from repro.core.record import RecordStatus


def _collect_elems_by_type(stream):
    by_type = {t: [] for t in ElemType}
    for record in stream.records():
        if record.status != RecordStatus.VALID:
            continue
        for elem in record.elems():
            by_type[elem.elem_type].append(elem)
    return by_type


class TestTable1FieldPresence:
    @pytest.fixture(scope="class")
    def elems_by_type(self, core_archive, core_scenario):
        from tests.core.conftest import make_stream

        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        return _collect_elems_by_type(stream)

    def test_all_four_elem_types_occur(self, elems_by_type):
        assert elems_by_type[ElemType.RIB]
        assert elems_by_type[ElemType.ANNOUNCEMENT]
        assert elems_by_type[ElemType.WITHDRAWAL]
        assert elems_by_type[ElemType.STATE]

    def test_common_fields_always_populated(self, elems_by_type):
        for elems in elems_by_type.values():
            for elem in elems:
                assert isinstance(elem.time, int) and elem.time > 0
                assert elem.peer_address
                assert elem.peer_asn > 0
                assert elem.project in ("ris", "routeviews")
                assert elem.collector

    def test_rib_elem_fields(self, elems_by_type):
        for elem in elems_by_type[ElemType.RIB]:
            assert elem.prefix is not None
            assert elem.next_hop
            assert elem.as_path is not None and len(elem.as_path) >= 1
            assert elem.communities is not None
            assert elem.old_state is None and elem.new_state is None

    def test_announcement_elem_fields(self, elems_by_type):
        for elem in elems_by_type[ElemType.ANNOUNCEMENT]:
            assert elem.prefix is not None
            assert elem.next_hop
            assert elem.as_path is not None
            assert elem.old_state is None and elem.new_state is None

    def test_withdrawal_elem_fields(self, elems_by_type):
        for elem in elems_by_type[ElemType.WITHDRAWAL]:
            assert elem.prefix is not None
            assert elem.next_hop is None
            assert elem.as_path is None
            assert elem.old_state is None and elem.new_state is None

    def test_state_elem_fields(self, elems_by_type):
        for elem in elems_by_type[ElemType.STATE]:
            assert elem.prefix is None
            assert elem.as_path is None
            assert elem.old_state is not None
            assert elem.new_state is not None

    def test_state_elems_only_from_ris(self, elems_by_type):
        """RouteViews collectors do not dump state messages (paper footnote 5)."""
        assert {elem.project for elem in elems_by_type[ElemType.STATE]} == {"ris"}


class TestElemViews:
    def _announcement(self):
        return BGPElem(
            elem_type=ElemType.ANNOUNCEMENT,
            time=1_000,
            peer_address="10.0.0.1",
            peer_asn=64500,
            prefix=Prefix.from_string("192.0.2.0/24"),
            next_hop="10.0.0.1",
            as_path=ASPath.from_asns([64500, 3356, 15169]),
            communities=CommunitySet([Community(3356, 100)]),
            project="ris",
            collector="rrc0",
        )

    def test_field_dict_matches_pybgpstream_keys(self):
        fields = self._announcement().field_dict()
        assert fields["prefix"] == "192.0.2.0/24"
        assert fields["as-path"] == "64500 3356 15169"
        assert fields["next-hop"] == "10.0.0.1"
        assert fields["communities"] == {"3356:100"}

    def test_origin_asn(self):
        assert self._announcement().origin_asn == 15169
        state = BGPElem(ElemType.STATE, 0, "10.0.0.1", 1)
        assert state.origin_asn is None

    def test_ascii_rendering(self):
        line = self._announcement().to_ascii()
        parts = line.split("|")
        assert parts[0] == "A"
        assert parts[1] == "1000"
        assert parts[2] == "ris"
        assert parts[6] == "192.0.2.0/24"
        assert parts[8] == "64500 3356 15169"

    def test_bgpdump_ascii_announcement(self):
        line = self._announcement().to_bgpdump_ascii()
        assert line.startswith("BGP4MP|1000|A|10.0.0.1|64500|192.0.2.0/24|64500 3356 15169|IGP|")

    def test_bgpdump_ascii_withdrawal_and_state(self):
        withdrawal = BGPElem(
            ElemType.WITHDRAWAL, 5, "10.0.0.1", 1, prefix=Prefix.from_string("10.0.0.0/8")
        )
        assert withdrawal.to_bgpdump_ascii() == "BGP4MP|5|W|10.0.0.1|1|10.0.0.0/8"
        state = BGPElem(
            ElemType.STATE,
            6,
            "10.0.0.1",
            1,
            old_state=SessionState.IDLE,
            new_state=SessionState.ESTABLISHED,
        )
        assert state.to_bgpdump_ascii() == "BGP4MP|6|STATE|10.0.0.1|1|1|6"
