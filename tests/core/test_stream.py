"""Tests for the BGPStream API: historical mode, live mode, data interfaces."""

from __future__ import annotations

import csv

import pytest

from repro.broker.broker import Broker
from repro.broker.db import MetadataDB
from repro.collectors.archive import Archive
from repro.core.elem import ElemType
from repro.core.interfaces import (
    BrokerDataInterface,
    CSVFileDataInterface,
    SingleFileDataInterface,
    SQLiteDataInterface,
)
from repro.core.record import RecordStatus
from repro.core.stream import BGPStream
from repro.utils.timeutil import SimulatedClock

from tests.core.conftest import make_stream


class TestStreamConfiguration:
    def test_start_requires_interface(self):
        with pytest.raises(RuntimeError):
            BGPStream().start()

    def test_no_reconfiguration_after_start(self, core_archive, core_scenario):
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        stream.start()
        with pytest.raises(RuntimeError):
            stream.add_filter("project", "ris")
        with pytest.raises(RuntimeError):
            stream.add_interval_filter(0, 1)
        with pytest.raises(RuntimeError):
            stream.set_data_interface(None)

    def test_get_next_record_autostarts(self, core_archive, core_scenario):
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        assert stream.get_next_record() is not None


class TestBatchedConsumption:
    def test_batched_flattens_to_the_sequential_stream(self, core_archive, core_scenario):
        reference = [
            (r.time, r.collector, str(r.status))
            for r in make_stream(core_archive, core_scenario.start, core_scenario.end).records()
        ]
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        flattened = [
            (r.time, r.collector, str(r.status))
            for batch in stream.records_batched(batch_size=37)
            for r in batch
        ]
        assert flattened == reference
        assert stream.records_read == len(reference) + stream.records_filtered

    def test_batched_rejects_nonpositive_batch_size_in_both_modes(
        self, core_archive, core_scenario
    ):
        from repro.core.parallel import ParallelConfig

        for parallel in (None, ParallelConfig(executor="serial")):
            stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
            if parallel is not None:
                stream.set_parallel(parallel)
            with pytest.raises(ValueError):
                stream.records_batched(batch_size=0)

    def test_batched_and_record_apis_cannot_be_mixed(self, core_archive, core_scenario):
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        batches = stream.records_batched(batch_size=8)
        next(batches)
        with pytest.raises(RuntimeError):
            stream.get_next_record()
        with pytest.raises(RuntimeError):
            stream.records_batched()
        # ...and the other direction.
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        stream.get_next_record()
        with pytest.raises(RuntimeError):
            stream.records_batched()

    def test_parallel_stream_matches_sequential(self, core_archive, core_scenario):
        from repro.core.parallel import ParallelConfig

        reference = [
            (r.time, r.collector, str(r.status))
            for r in make_stream(core_archive, core_scenario.start, core_scenario.end).records()
        ]
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        stream.set_parallel(ParallelConfig(executor="thread", max_workers=2))
        parallel = [(r.time, r.collector, str(r.status)) for r in stream.records()]
        assert parallel == reference


class TestHistoricalStream:
    def test_records_are_time_sorted(self, core_stream):
        times = [r.time for r in core_stream.records() if r.status == RecordStatus.VALID]
        assert times
        assert times == sorted(times)

    def test_stream_ends(self, core_stream):
        for _ in core_stream.records():
            pass
        assert core_stream.get_next_record() is None

    def test_project_filter(self, core_archive, core_scenario):
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        stream.add_filter("project", "ris")
        projects = {r.project for r in stream.records() if r.status == RecordStatus.VALID}
        assert projects == {"ris"}

    def test_record_type_filter(self, core_archive, core_scenario):
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        stream.add_filter("record-type", "ribs")
        types = {r.dump_type for r in stream.records() if r.status == RecordStatus.VALID}
        assert types == {"ribs"}

    def test_collector_filter(self, core_archive, core_scenario):
        collector = core_scenario.collectors[0].name
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        stream.add_filter("collector", collector)
        seen = {r.collector for r in stream.records() if r.status == RecordStatus.VALID}
        assert seen == {collector}

    def test_elems_respect_elem_filters(self, core_archive, core_scenario):
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        stream.add_filter("elem-type", "withdrawals")
        kinds = {elem.elem_type for _, elem in stream.elems()}
        assert kinds <= {ElemType.WITHDRAWAL}

    def test_peer_asn_filter_restricts_elems(self, core_archive, core_scenario):
        vp_asn = core_scenario.collectors[0].vps[0].asn
        stream = make_stream(core_archive, core_scenario.start, core_scenario.end)
        stream.add_filter("peer-asn", str(vp_asn))
        peers = {elem.peer_asn for _, elem in stream.elems()}
        assert peers == {vp_asn}

    def test_sub_interval_restricts_records(self, core_archive, core_scenario):
        half = core_scenario.start + core_scenario.config.duration // 2
        stream = make_stream(core_archive, core_scenario.start, half)
        for record in stream.records():
            if record.status == RecordStatus.VALID:
                assert record.time <= half

    def test_same_stream_config_is_reproducible(self, core_archive, core_scenario):
        first = make_stream(core_archive, core_scenario.start, core_scenario.end)
        second = make_stream(core_archive, core_scenario.start, core_scenario.end)
        a = [(r.time, r.collector, r.dump_type) for r in first.records()]
        b = [(r.time, r.collector, r.dump_type) for r in second.records()]
        assert a == b


class TestLiveStream:
    def test_live_stream_sees_data_as_it_is_published(self, tmp_path, core_scenario):
        """Live mode: the stream blocks/polls and picks up newly published dumps."""
        # Build a tiny dedicated archive whose files become available over time.
        source_archive = Archive(str(tmp_path / "src"))
        scenario = core_scenario
        files = scenario.generate(source_archive)
        # Re-publish into a fresh archive with controlled availability times.
        live_archive = Archive(str(tmp_path / "live"))
        for index, entry in enumerate(sorted(files, key=lambda f: f.timestamp)):
            live_archive.publish(
                entry.project,
                entry.collector,
                entry.dump_type,
                entry.timestamp,
                entry.duration,
                entry.path,
                available_at=scenario.start + 600 * (index + 1),
            )
        clock = SimulatedClock(scenario.start)
        broker = Broker(archives=[live_archive])
        interface = BrokerDataInterface(
            broker, clock=clock, poll_interval=300, max_empty_polls=200
        )
        stream = BGPStream(data_interface=interface)
        stream.add_interval_filter(scenario.start, None)  # live mode
        count = sum(1 for _ in stream.records())
        reference = sum(
            1
            for _ in make_stream(
                Archive(str(tmp_path / "src")), scenario.start, scenario.end
            ).records()
        )
        assert count >= reference  # live never loses data (it may re-see boundary files)
        assert clock.now() > scenario.start  # it actually had to wait for publications

    def test_live_poll_gives_up_after_max_empty_polls(self, tmp_path):
        archive = Archive(str(tmp_path))
        clock = SimulatedClock(0)
        interface = BrokerDataInterface(
            Broker(archives=[archive]), clock=clock, poll_interval=10, max_empty_polls=3
        )
        stream = BGPStream(data_interface=interface)
        stream.add_interval_filter(0, None)
        assert list(stream.records()) == []
        assert clock.now() == pytest.approx(20)


class TestLocalDataInterfaces:
    def test_single_file_interface(self, core_archive):
        entry = next(e for e in core_archive.entries() if e.dump_type == "updates")
        interface = SingleFileDataInterface(
            entry.path, dump_type="updates", collector=entry.collector, timestamp=entry.timestamp
        )
        stream = BGPStream(data_interface=interface)
        records = list(stream.records())
        assert records
        assert all(r.collector == entry.collector for r in records)

    def test_csv_interface(self, core_archive, core_scenario, tmp_path):
        csv_path = str(tmp_path / "files.csv")
        with open(csv_path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["# project", "collector", "type", "timestamp", "duration", "path"])
            for entry in core_archive.entries():
                writer.writerow(
                    [
                        entry.project,
                        entry.collector,
                        entry.dump_type,
                        entry.timestamp,
                        entry.duration,
                        entry.path,
                    ]
                )
        stream = BGPStream(data_interface=CSVFileDataInterface(csv_path))
        stream.add_interval_filter(core_scenario.start, core_scenario.end)
        stream.add_filter("record-type", "ribs")
        records = [r for r in stream.records() if r.status == RecordStatus.VALID]
        assert records
        assert {r.dump_type for r in records} == {"ribs"}

    def test_sqlite_interface(self, core_archive, core_scenario, tmp_path):
        db_path = str(tmp_path / "broker.sqlite")
        db = MetadataDB(db_path)
        broker = Broker(archives=[core_archive], db=db)
        broker.crawler.crawl()
        db.close()
        stream = BGPStream(data_interface=SQLiteDataInterface(db_path))
        stream.add_interval_filter(core_scenario.start, core_scenario.end)
        count = sum(1 for _ in stream.records())
        reference = sum(
            1 for _ in make_stream(core_archive, core_scenario.start, core_scenario.end).records()
        )
        assert count == reference
