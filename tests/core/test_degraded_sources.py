"""Degraded dump sources surfaced end-to-end, in sequential and parallel modes.

The paper's error-checking extension (§3.3.3) requires that unreadable,
empty and corrupted dumps are *signalled* to the user rather than silently
dropped or fatally raised.  These tests drive all three degradations through
the full :class:`repro.core.stream.BGPStream` facade and the PyBGPStream
Listing-1 idiom, with and without the parallel batched engine.
"""

from __future__ import annotations

import csv
import os

import pytest

import repro.pybgpstream as pybgpstream
from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.interfaces import CSVFileDataInterface
from repro.core.parallel import ParallelConfig
from repro.core.record import RecordStatus
from repro.core.stream import BGPStream
from repro.mrt.records import BGP4MPMessage
from repro.mrt.writer import corrupt_file, write_updates_dump

#: The stream modes every assertion runs under.
MODES = {
    "sequential": None,
    "parallel-serial": ParallelConfig(executor="serial", batch_size=4),
    "parallel-thread": ParallelConfig(executor="thread", max_workers=2, batch_size=4),
}


def _write_updates(path, timestamps, peer_asn=64500):
    prefix = Prefix.from_string("192.0.2.0/24")
    attrs = PathAttributes(as_path=ASPath.from_asns([peer_asn, 15169]), next_hop="10.0.0.1")
    write_updates_dump(
        path,
        [
            (
                ts,
                BGP4MPMessage(
                    peer_asn, 65000, "10.0.0.1", "10.0.0.2",
                    BGPUpdate(announced=[prefix], attributes=attrs),
                ),
            )
            for ts in timestamps
        ],
    )


@pytest.fixture()
def degraded_csv(tmp_path):
    """A CSV index over one good, one empty, one truncated and one missing dump."""
    good = str(tmp_path / "good.mrt")
    _write_updates(good, [100, 150, 190])
    empty = str(tmp_path / "empty.mrt")
    write_updates_dump(empty, [])
    truncated = str(tmp_path / "truncated.mrt")
    _write_updates(truncated, [110, 160, 195], peer_asn=64501)
    corrupt_file(truncated, truncate_at=os.path.getsize(truncated) - 7)
    missing = str(tmp_path / "missing.mrt")

    index = str(tmp_path / "index.csv")
    with open(index, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        for collector, path in [
            ("good", good), ("empty", empty), ("trunc", truncated), ("gone", missing),
        ]:
            writer.writerow(["ris", collector, "updates", 100, 100, path])
    return index


def _expected_statuses(records):
    by_status = {}
    for record in records:
        by_status.setdefault(record.status, []).append(record)
    return by_status


@pytest.mark.parametrize("mode", MODES, ids=list(MODES))
def test_all_degradations_surface_through_the_stream(degraded_csv, mode):
    stream = BGPStream(
        data_interface=CSVFileDataInterface(degraded_csv), parallel=MODES[mode]
    )
    records = list(stream.records())
    by_status = _expected_statuses(records)

    assert len(by_status[RecordStatus.CORRUPTED_SOURCE]) == 1
    assert by_status[RecordStatus.CORRUPTED_SOURCE][0].collector == "gone"
    assert len(by_status[RecordStatus.EMPTY_SOURCE]) == 1
    assert by_status[RecordStatus.EMPTY_SOURCE][0].collector == "empty"
    assert len(by_status[RecordStatus.CORRUPTED_RECORD]) == 1
    assert by_status[RecordStatus.CORRUPTED_RECORD][0].collector == "trunc"
    # Valid records from the good and (pre-truncation) damaged dumps.
    assert len(by_status[RecordStatus.VALID]) == 5
    assert stream.records_read == len(records)
    # Degraded records carry no elems but remain visible.
    for status in (
        RecordStatus.CORRUPTED_SOURCE, RecordStatus.EMPTY_SOURCE, RecordStatus.CORRUPTED_RECORD
    ):
        assert all(list(r.elems()) == [] for r in by_status[status])


@pytest.mark.parametrize("mode", MODES, ids=list(MODES))
def test_parallel_and_sequential_agree_on_degraded_sources(degraded_csv, mode):
    def run(parallel):
        stream = BGPStream(
            data_interface=CSVFileDataInterface(degraded_csv), parallel=parallel
        )
        return [
            (r.time, r.collector, str(r.status), str(r.dump_position))
            for r in stream.records()
        ]

    assert run(MODES[mode]) == run(None)


@pytest.mark.parametrize("mode", MODES, ids=list(MODES))
def test_records_batched_surfaces_degradations(degraded_csv, mode):
    stream = BGPStream(
        data_interface=CSVFileDataInterface(degraded_csv), parallel=MODES[mode]
    )
    batches = list(stream.records_batched(batch_size=3))
    assert all(len(batch) <= 3 for batch in batches)
    statuses = {r.status for batch in batches for r in batch}
    assert statuses == {
        RecordStatus.VALID,
        RecordStatus.CORRUPTED_SOURCE,
        RecordStatus.EMPTY_SOURCE,
        RecordStatus.CORRUPTED_RECORD,
    }


@pytest.mark.parametrize("mode", MODES, ids=list(MODES))
def test_listing1_idiom_sees_degraded_statuses(degraded_csv, mode):
    """The paper's Listing-1 loop observes every degradation status."""
    pybgpstream.set_default_data_interface(CSVFileDataInterface(degraded_csv))
    try:
        stream = pybgpstream.BGPStream(parallel=MODES[mode])
        stream.add_interval_filter(0, 1000)
        stream.start()
        rec = pybgpstream.BGPRecord()
        seen_statuses = set()
        elems = 0
        while stream.get_next_record(rec):
            seen_statuses.add(rec.status)
            elem = rec.get_next_elem()
            while elem:
                elems += 1
                elem = rec.get_next_elem()
        assert seen_statuses == {
            "valid", "corrupted-source", "empty-source", "corrupted-record"
        }
        assert elems == 5  # one announcement per valid update record
    finally:
        pybgpstream.set_default_data_interface(None)
