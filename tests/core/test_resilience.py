"""Deterministic timing of the resilience toolkit under a fake clock.

ISSUE 9 satellite: backoff schedules, seeded jitter, circuit-breaker state
transitions and supervisor restart budgets are all asserted with exact
clock arithmetic on a :class:`SimulatedClock` — no real sleeping, no
wall-clock reads, no flakiness.
"""

from __future__ import annotations

import inspect
import threading

import pytest

from repro.core.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    Supervisor,
    TransientError,
    inject_faults,
)
from repro.utils.timeutil import SimulatedClock


class TestRetryPolicy:
    def test_capped_exponential_schedule(self):
        policy = RetryPolicy(max_retries=6, base=0.5, cap=4.0)
        assert policy.delays() == [0.5, 1.0, 2.0, 4.0, 4.0, 4.0]

    def test_run_sleeps_the_schedule_on_the_injected_clock(self):
        clock = SimulatedClock(0.0)
        policy = RetryPolicy(max_retries=3, base=0.5, cap=30.0)
        calls = []

        def flaky():
            calls.append(clock.now())
            if len(calls) < 3:
                raise TransientError("transient")
            return "ok"

        assert policy.run(flaky, clock=clock) == "ok"
        # Attempts at t=0, t=0.5, t=1.5 (0.5 then 1.0 backoff).
        assert calls == [0.0, 0.5, 1.5]
        assert clock.now() == pytest.approx(1.5)

    def test_retries_exhausted_raises_the_last_error(self):
        clock = SimulatedClock(0.0)
        policy = RetryPolicy(max_retries=2, base=1.0, cap=30.0)
        attempts = []

        def always_fails():
            attempts.append(1)
            raise ConnectionError("down")

        with pytest.raises(ConnectionError):
            policy.run(always_fails, clock=clock)
        assert len(attempts) == 3  # initial + 2 retries
        assert clock.now() == pytest.approx(3.0)  # 1 + 2

    def test_non_retryable_errors_propagate_immediately(self):
        policy = RetryPolicy(max_retries=5, base=1.0)
        clock = SimulatedClock(0.0)

        def typo():
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            policy.run(typo, clock=clock)
        assert clock.now() == 0.0  # no backoff was slept

    def test_on_retry_hook_sees_attempt_error_and_delay(self):
        clock = SimulatedClock(0.0)
        policy = RetryPolicy(max_retries=2, base=0.5, cap=30.0)
        seen = []

        def flaky():
            if len(seen) < 2:
                raise TransientError("boom")
            return 42

        policy.run(
            flaky,
            clock=clock,
            on_retry=lambda attempt, exc, delay: seen.append((attempt, type(exc), delay)),
        )
        assert seen == [(1, TransientError, 0.5), (2, TransientError, 1.0)]

    def test_seeded_jitter_is_deterministic_and_bounded(self):
        schedule_a = RetryPolicy(max_retries=8, base=1.0, cap=64.0, jitter=0.5, seed=7).delays()
        schedule_b = RetryPolicy(max_retries=8, base=1.0, cap=64.0, jitter=0.5, seed=7).delays()
        schedule_c = RetryPolicy(max_retries=8, base=1.0, cap=64.0, jitter=0.5, seed=8).delays()
        assert schedule_a == schedule_b  # same seed, same schedule
        assert schedule_a != schedule_c  # different seed, different schedule
        plain = RetryPolicy(max_retries=8, base=1.0, cap=64.0).delays()
        for jittered, nominal in zip(schedule_a, plain):
            assert nominal * 0.5 <= jittered <= nominal * 1.5

    def test_zero_jitter_means_no_rng(self):
        assert RetryPolicy(jitter=0.0).delays() == RetryPolicy(jitter=0.0).delays()

    def test_deadline_stops_the_retry_loop_early(self):
        clock = SimulatedClock(0.0)
        policy = RetryPolicy(max_retries=10, base=2.0, cap=30.0)
        deadline = Deadline(3.0, clock=clock)
        attempts = []

        def always_fails():
            attempts.append(clock.now())
            raise TransientError("down")

        with pytest.raises(TransientError):
            policy.run(always_fails, clock=clock, deadline=deadline)
        # Attempts at 0, 2 (backoff 2s); at t=2+4=6 the deadline (3s) is
        # spent, so the loop gives up instead of burning all 10 retries.
        assert len(attempts) < 11

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestDeadline:
    def test_expiry_follows_the_clock(self):
        clock = SimulatedClock(100.0)
        deadline = Deadline(5.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(5.0)
        clock.sleep(4.0)
        assert deadline.remaining() == pytest.approx(1.0)
        deadline.check()  # no raise
        clock.sleep(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded):
            deadline.check("poll")


class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset=10.0):
        return CircuitBreaker(
            failure_threshold=threshold, reset_timeout=reset, clock=clock
        )

    def test_opens_after_consecutive_failures(self):
        clock = SimulatedClock(0.0)
        breaker = self.make(clock)

        def boom():
            raise TransientError("x")

        for _ in range(3):
            with pytest.raises(TransientError):
                breaker.call(boom)
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")
        assert breaker.rejections == 1
        assert breaker.opens == 1

    def test_success_resets_the_consecutive_count(self):
        clock = SimulatedClock(0.0)
        breaker = self.make(clock, threshold=3)

        def boom():
            raise TransientError("x")

        for _ in range(2):
            with pytest.raises(TransientError):
                breaker.call(boom)
        breaker.call(lambda: "ok")
        for _ in range(2):
            with pytest.raises(TransientError):
                breaker.call(boom)
        assert breaker.state == CircuitBreaker.CLOSED  # never hit 3 in a row

    def test_half_open_probe_closes_on_success(self):
        clock = SimulatedClock(0.0)
        breaker = self.make(clock, threshold=1, reset=10.0)
        with pytest.raises(TransientError):
            breaker.call(self._boom)
        assert breaker.state == CircuitBreaker.OPEN
        clock.sleep(9.9)
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "still open")
        clock.sleep(0.1)  # reset_timeout reached exactly
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.call(lambda: "probe") == "probe"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens_for_another_timeout(self):
        clock = SimulatedClock(0.0)
        breaker = self.make(clock, threshold=1, reset=10.0)
        with pytest.raises(TransientError):
            breaker.call(self._boom)
        clock.sleep(10.0)
        with pytest.raises(TransientError):
            breaker.call(self._boom)  # the probe fails
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        clock.sleep(5.0)
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "x")  # second timeout not yet served
        clock.sleep(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_admits_a_bounded_probe_count(self):
        clock = SimulatedClock(0.0)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, half_open_probes=2, clock=clock
        )
        with pytest.raises(TransientError):
            breaker.call(self._boom)
        clock.sleep(1.0)
        assert breaker.allow()  # probe 1
        assert breaker.allow()  # probe 2
        assert not breaker.allow()  # probes exhausted until an outcome lands

    def test_stats_shape(self):
        breaker = self.make(SimulatedClock(0.0))
        stats = breaker.stats()
        assert set(stats) == {"state", "successes", "failures", "rejections", "opens"}

    @staticmethod
    def _boom():
        raise TransientError("x")


class TestSupervisor:
    def test_clean_run_never_restarts(self):
        supervisor = Supervisor(lambda: None, max_restarts=3, clock=SimulatedClock(0.0))
        supervisor.supervise()
        assert supervisor.finished
        assert supervisor.crashes == 0
        assert supervisor.restarts == 0
        assert not supervisor.gave_up

    def test_restarts_with_backoff_until_success(self):
        clock = SimulatedClock(0.0)
        crashes = []

        def run():
            if len(crashes) < 2:
                crashes.append(clock.now())
                raise RuntimeError("bridge died")

        supervisor = Supervisor(
            run,
            max_restarts=5,
            backoff=RetryPolicy(max_retries=5, base=0.5, cap=30.0),
            clock=clock,
        )
        supervisor.supervise()
        assert supervisor.finished
        assert supervisor.crashes == 2
        assert supervisor.restarts == 2
        assert crashes == [0.0, 0.5]  # second attempt after the 0.5s backoff
        assert clock.now() == pytest.approx(1.5)  # 0.5 + 1.0 slept in total

    def test_budget_exhaustion_gives_up_cleanly_and_raises(self):
        clock = SimulatedClock(0.0)
        given_up = []

        def run():
            raise RuntimeError("always")

        supervisor = Supervisor(
            run,
            max_restarts=2,
            backoff=RetryPolicy(max_retries=2, base=1.0, cap=30.0),
            clock=clock,
            on_give_up=lambda exc: given_up.append(type(exc)),
        )
        with pytest.raises(RuntimeError):
            supervisor.supervise()
        assert supervisor.gave_up
        assert supervisor.crashes == 3  # initial + 2 restarts
        assert supervisor.restarts == 2
        assert given_up == [RuntimeError]
        assert supervisor.snapshot()["error"] == "RuntimeError"

    def test_on_crash_veto_stops_restarting(self):
        def run():
            raise RuntimeError("x")

        supervisor = Supervisor(
            run,
            max_restarts=10,
            clock=SimulatedClock(0.0),
            on_crash=lambda exc, n: False,
        )
        with pytest.raises(RuntimeError):
            supervisor.supervise()
        assert supervisor.crashes == 1
        assert supervisor.restarts == 0
        assert supervisor.gave_up

    def test_on_crash_sees_the_crash_number(self):
        seen = []

        def run():
            if len(seen) < 3:
                raise TransientError("x")

        supervisor = Supervisor(
            run,
            max_restarts=5,
            backoff=RetryPolicy(max_retries=5, base=0.0),
            clock=SimulatedClock(0.0),
            on_crash=lambda exc, n: seen.append(n) or True,
        )
        supervisor.supervise()
        assert seen == [1, 2, 3]

    def test_threaded_form_records_instead_of_raising(self):
        done = threading.Event()

        def run():
            try:
                raise ValueError("terminal")
            finally:
                done.set()

        supervisor = Supervisor(run, max_restarts=0, clock=SimulatedClock(0.0))
        thread = supervisor.start()
        assert done.wait(5.0)
        thread.join(5.0)
        assert not thread.is_alive()
        assert supervisor.gave_up
        assert isinstance(supervisor.last_error, ValueError)

    def test_single_use(self):
        supervisor = Supervisor(lambda: None)
        supervisor.start().join(5.0)
        with pytest.raises(RuntimeError):
            supervisor.start()


class TestFaultInjection:
    class Source:
        """A stand-in poll target with an introspectable signature."""

        def __init__(self):
            self.polls = 0

        def poll(self, max_messages=None, until_ts=None):
            self.polls += 1
            return ["msg"]

    def test_plan_fails_at_scripted_indices(self):
        plan = FaultPlan(fail_at=(1, 3))
        source = inject_faults(self.Source(), plan, ["poll"])
        results = []
        for _ in range(5):
            try:
                results.append(bool(source.poll()))
            except InjectedFault:
                results.append(False)
        assert results == [True, False, True, False, True]
        assert plan.calls == 5
        assert plan.injected == 2

    def test_fail_from_is_a_permanent_outage(self):
        plan = FaultPlan(fail_from=2)
        source = inject_faults(self.Source(), plan, ["poll"])
        assert source.poll() and source.poll()
        for _ in range(3):
            with pytest.raises(InjectedFault):
                source.poll()

    def test_injected_error_is_transient_by_default(self):
        plan = FaultPlan(fail_at=(0,))
        with pytest.raises(TransientError):
            inject_faults(self.Source(), plan, ["poll"]).poll()

    def test_custom_error_class(self):
        plan = FaultPlan(fail_at=(0,), error=OSError)
        with pytest.raises(OSError):
            inject_faults(self.Source(), plan, ["poll"]).poll()

    def test_fault_fires_before_the_call_reaches_the_target(self):
        inner = self.Source()
        source = inject_faults(inner, FaultPlan(fail_at=(0,)), ["poll"])
        with pytest.raises(InjectedFault):
            source.poll()
        assert inner.polls == 0  # all-or-nothing: no partial side effects

    def test_wrapper_preserves_signatures_and_reads(self):
        inner = self.Source()
        source = inject_faults(inner, FaultPlan(), ["poll"])
        # The live interface feature-detects until_ts via inspect.signature;
        # the wrapper must not hide it.
        assert "until_ts" in inspect.signature(source.poll).parameters
        assert source.polls == 0  # attribute reads pass through
        source.poll()
        assert source.polls == 1

    def test_one_plan_can_guard_several_objects(self):
        plan = FaultPlan(fail_at=(1,))
        a = inject_faults(self.Source(), plan, ["poll"])
        b = inject_faults(self.Source(), plan, ["poll"])
        a.poll()  # call 0: fine
        with pytest.raises(InjectedFault):
            b.poll()  # call 1 across the shared counter: fails

    def test_retry_policy_absorbs_transient_injected_faults(self):
        clock = SimulatedClock(0.0)
        plan = FaultPlan(fail_at=(0, 1))
        source = inject_faults(self.Source(), plan, ["poll"])
        policy = RetryPolicy(max_retries=3, base=0.5, cap=30.0)
        assert policy.run(source.poll, clock=clock) == ["msg"]
        assert clock.now() == pytest.approx(1.5)
        assert plan.injected == 2
