"""Broker edge cases: empty windows, live-boundary semantics, duplicate
files across overlapping archives."""

from __future__ import annotations

from repro.broker.broker import Broker, BrokerQuery
from repro.broker.db import DumpFileRecord, MetadataDB
from repro.collectors.archive import Archive


def _record(timestamp, collector="rrc0", duration=900, available_at=None, path=None):
    if available_at is None:
        available_at = timestamp + duration + 60
    path = path or f"/a/{collector}/{timestamp}.mrt.gz"
    return DumpFileRecord("ris", collector, "updates", timestamp, duration, path, available_at)


class TestEmptyWindows:
    def test_interval_before_any_data(self):
        db = MetadataDB()
        db.insert(_record(100_000))
        broker = Broker(db=db, window_span=3600)
        query = BrokerQuery(interval_start=0, interval_end=3600)
        responses = list(broker.iter_windows(query))
        assert all(r.empty for r in responses)
        assert not responses[-1].more_data

    def test_gap_between_dumps_yields_empty_middle_windows(self):
        db = MetadataDB()
        db.insert(_record(0))
        db.insert(_record(4 * 3600))
        broker = Broker(db=db, window_span=3600)
        query = BrokerQuery(interval_start=0, interval_end=5 * 3600)
        responses = list(broker.iter_windows(query))
        # Windows over the gap are empty but still signal more_data so the
        # client keeps going and reaches the late file.
        assert any(r.empty and r.more_data for r in responses)
        files = [f for r in responses for f in r]
        assert {f.timestamp for f in files} == {0, 4 * 3600}

    def test_empty_db_paginated_query(self):
        broker = Broker(db=MetadataDB())
        query = BrokerQuery(interval_start=0, interval_end=3600)
        response = broker.get_window(query, page_size=5)
        assert response.empty
        assert response.next_cursor is None

    def test_zero_length_interval(self):
        db = MetadataDB()
        db.insert(_record(0))
        broker = Broker(db=db)
        query = BrokerQuery(interval_start=100, interval_end=100)
        response = broker.get_window(query)
        assert response.empty and not response.more_data


class TestLiveBoundaries:
    def test_live_query_exposes_no_future_publications(self):
        db = MetadataDB()
        db.insert(_record(0, available_at=1000))
        broker = Broker(db=db)
        query = BrokerQuery(interval_start=0, interval_end=None)
        assert broker.get_window(query, now=999).empty
        assert broker.get_window(query, now=999.5).empty
        # Publication instant itself is visible (<= semantics).
        assert len(broker.get_window(query, now=1000)) == 1

    def test_live_empty_response_means_poll_again(self):
        broker = Broker(db=MetadataDB())
        query = BrokerQuery(interval_start=0, interval_end=None)
        response = broker.get_window(query, now=100)
        assert response.empty
        assert response.more_data  # live streams never end

    def test_live_flag_follows_interval_end(self):
        assert BrokerQuery(interval_start=0, interval_end=None).live
        assert not BrokerQuery(interval_start=0, interval_end=0).live

    def test_published_exactly_at_poll_boundary_not_lost(self):
        # A file published exactly at the previous poll's `now` must not
        # slip between two get_new_files polls: the publication query is
        # strictly-greater on published_after, so polling with the previous
        # now excludes it only if it was already returned then.
        db = MetadataDB()
        broker = Broker(db=db)
        query = BrokerQuery(interval_start=0, interval_end=None)
        first_now = 500.0
        assert broker.get_new_files(query, now=first_now) == []
        db.insert(_record(0, available_at=first_now))  # published "at" the poll
        late = broker.get_new_files(query, published_after=None, now=first_now + 30)
        assert len(late) == 1


class TestDuplicateArchives:
    def _dual_archives(self, tmp_path):
        # Two archives sharing some published files (mirrored repositories):
        # the same path must be indexed exactly once.
        shared_dir = tmp_path / "shared"
        shared_dir.mkdir()
        a1 = Archive(str(tmp_path / "a1"))
        a2 = Archive(str(tmp_path / "a2"))
        for i in range(4):
            dump = str(shared_dir / f"shared{i}.mrt.gz")
            open(dump, "wb").close()
            a1.publish("ris", "rrc0", "updates", i * 900, 900, dump, available_at=1)
            if i % 2 == 0:  # half the files are mirrored on the second archive
                a2.publish("ris", "rrc0", "updates", i * 900, 900, dump, available_at=1)
        only2 = str(shared_dir / "only2.mrt.gz")
        open(only2, "wb").close()
        a2.publish("ris", "rrc0", "updates", 4 * 900, 900, only2, available_at=1)
        return a1, a2

    def test_mirrored_files_indexed_once(self, tmp_path):
        a1, a2 = self._dual_archives(tmp_path)
        broker = Broker(archives=[a1, a2])
        query = BrokerQuery(interval_start=0, interval_end=5 * 900)
        files = [f for r in broker.iter_windows(query) for f in r]
        paths = [f.path for f in files]
        assert len(paths) == len(set(paths)) == 5

    def test_dedup_survives_pagination(self, tmp_path):
        a1, a2 = self._dual_archives(tmp_path)
        broker = Broker(archives=[a1, a2])
        query = BrokerQuery(interval_start=0, interval_end=5 * 900)
        files = [f for r in broker.iter_windows(query, page_size=2) for f in r]
        paths = [f.path for f in files]
        assert len(paths) == len(set(paths)) == 5

    def test_both_archives_keep_independent_crawl_state(self, tmp_path):
        a1, a2 = self._dual_archives(tmp_path)
        broker = Broker(archives=[a1, a2])
        broker.crawler.crawl(now=10)
        states = broker.db.crawl_states()
        assert len(states) == 2
        assert {s.position for s in states} == {4, 3}
