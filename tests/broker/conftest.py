"""Fixtures for the broker-tier tests: a small generated dump archive."""

from __future__ import annotations

import pytest

from repro.collectors.archive import Archive
from repro.collectors.scenario import Scenario, ScenarioConfig, build_scenario
from repro.collectors.topology import TopologyConfig


@pytest.fixture(scope="session")
def broker_scenario() -> Scenario:
    config = ScenarioConfig(
        duration=1800,
        topology=TopologyConfig(num_tier1=2, num_transit=4, num_stub=10, seed=81),
        vps_per_collector=2,
        churn_updates_per_vp_per_hour=20,
        seed=82,
    )
    return build_scenario(config)


@pytest.fixture(scope="session")
def broker_archive(tmp_path_factory, broker_scenario) -> Archive:
    archive = Archive(str(tmp_path_factory.mktemp("broker-archive")))
    broker_scenario.generate(archive)
    return archive
