"""Tests for cursor pagination: DB keyset pages and Broker page cursors."""

from __future__ import annotations

import pytest

from repro.broker.broker import Broker, BrokerQuery, MAX_PAGE_SIZE
from repro.broker.cursor import CursorError
from repro.broker.db import DumpFileRecord, MetadataDB


def _record(timestamp, collector="rrc0", project="ris", dump_type="updates",
            duration=900, available_at=None, path=None):
    path = path or f"/a/{project}/{collector}/{dump_type}/{timestamp}.mrt.gz"
    if available_at is None:
        available_at = timestamp + duration + 60
    return DumpFileRecord(project, collector, dump_type, timestamp, duration, path, available_at)


def _filled_db(n=20, step=900):
    db = MetadataDB()
    for i in range(n):
        db.insert(_record(i * step))
    return db


class TestQueryPage:
    def test_pages_cover_everything_once(self):
        db = _filled_db(20)
        seen = []
        after = None
        while True:
            page = db.query_page(order="time", after=after, limit=7)
            if not page:
                break
            seen.extend(page)
            last = page[-1]
            after = (last.timestamp, last.file_id)
        assert [r.path for r in seen] == [r.path for r in db.query()]
        assert len({r.path for r in seen}) == 20

    def test_rows_carry_file_ids(self):
        db = _filled_db(3)
        ids = [r.file_id for r in db.query_page(order="time")]
        assert all(isinstance(i, int) for i in ids)
        assert ids == sorted(ids)

    def test_pagination_stable_under_concurrent_growth(self):
        # New rows appended mid-pagination must neither shift nor repeat
        # rows already served: the (key, id) keyset makes pages stable.
        db = _filled_db(10)
        first = db.query_page(order="time", after=None, limit=5)
        # The archive grows while the client holds a cursor: files appear
        # both before and after the cursor position.
        db.insert(_record(0, collector="rrc1"))
        db.insert(_record(100 * 900, collector="rrc1"))
        last = first[-1]
        rest = db.query_page(order="time", after=(last.timestamp, last.file_id))
        paths = [r.path for r in first + rest]
        assert len(paths) == len(set(paths))  # no repeats
        # Everything at-or-after the cursor key is still served, including
        # the late rrc1 row whose timestamp sorts after the cursor.
        assert any(r.collector == "rrc1" and r.timestamp == 100 * 900 for r in rest)

    def test_published_order_pages_by_available_at(self):
        db = MetadataDB()
        # Publication order deliberately disagrees with nominal time order.
        db.insert(_record(900, available_at=50))
        db.insert(_record(0, available_at=100))
        db.insert(_record(1800, available_at=75))
        page = db.query_page(order="published")
        assert [r.available_at for r in page] == [50, 75, 100]

    def test_unknown_order_rejected(self):
        db = _filled_db(1)
        with pytest.raises(ValueError):
            db.query_page(order="alphabetical")


class TestBrokerWindowPagination:
    def _broker(self, n=30, window_span=7200):
        db = _filled_db(n)
        return Broker(db=db, window_span=window_span)

    def test_paginated_equals_unpaginated(self):
        broker = self._broker(30)
        query = BrokerQuery(interval_start=0, interval_end=30 * 900)
        plain = [f.path for r in broker.iter_windows(query) for f in r]
        paged = [f.path for r in broker.iter_windows(query, page_size=3) for f in r]
        assert paged == plain

    def test_page_size_bounds_every_response(self):
        broker = self._broker(30)
        query = BrokerQuery(interval_start=0, interval_end=30 * 900)
        for response in broker.iter_windows(query, page_size=3):
            assert len(response) <= 3

    def test_page_size_capped_at_max(self):
        broker = self._broker(5)
        query = BrokerQuery(interval_start=0, interval_end=5 * 900)
        response = broker.get_window(query, page_size=MAX_PAGE_SIZE * 10)
        assert len(response) == 5  # no error, cap simply applies

    def test_cursor_resumes_exactly(self):
        broker = self._broker(30)
        query = BrokerQuery(interval_start=0, interval_end=30 * 900)
        first = broker.get_window(query, page_size=4)
        resumed = broker.get_window(query, cursor=first.next_cursor, page_size=4)
        all_paths = [f.path for f in first] + [f.path for f in resumed]
        assert len(all_paths) == len(set(all_paths)) == 8

    def test_cursor_from_other_query_rejected(self):
        broker = self._broker(10)
        query = BrokerQuery(interval_start=0, interval_end=10 * 900)
        other = BrokerQuery(projects=("ris",), interval_start=0, interval_end=10 * 900)
        cursor = broker.get_window(query, page_size=2).next_cursor
        with pytest.raises(CursorError):
            broker.get_window(other, cursor=cursor, page_size=2)

    def test_publication_cursor_rejected_as_window_cursor(self):
        broker = self._broker(10)
        query = BrokerQuery(interval_start=0, interval_end=None)
        pub = broker.get_new_files_page(query, page_size=2, now=10**9)
        assert pub.next_cursor is not None
        bounded = BrokerQuery(interval_start=0, interval_end=10 * 900)
        with pytest.raises(CursorError):
            broker.get_window(bounded, cursor=pub.next_cursor)

    def test_first_window_overlap_survives_pagination(self):
        # A file starting before the interval but reaching into it must be
        # served by the first window even when it lands on page 2+.
        db = MetadataDB()
        db.insert(_record(0, duration=7200, collector="early"))  # reaches into [3600, ...)
        for i in range(6):
            db.insert(_record(3600 + i * 900, collector=f"c{i}"))
        broker = Broker(db=db, window_span=7200)
        query = BrokerQuery(interval_start=3600, interval_end=3600 + 7200)
        files = [f.path for r in broker.iter_windows(query, page_size=2) for f in r]
        assert any("early" in p for p in files)
        assert len(files) == len(set(files)) == 7

    def test_invalid_page_size_rejected(self):
        broker = self._broker(5)
        query = BrokerQuery(interval_start=0, interval_end=5 * 900)
        with pytest.raises(ValueError):
            broker.get_window(query, page_size=0)


class TestPublicationPagination:
    def test_cursor_is_durable_watermark(self):
        db = MetadataDB()
        db.insert(_record(0, available_at=100))
        db.insert(_record(900, available_at=200))
        broker = Broker(db=db)
        query = BrokerQuery(interval_start=0, interval_end=None)

        first = broker.get_new_files_page(query, page_size=10, now=1000)
        assert len(first) == 2 and not first.more_data
        watermark = first.next_cursor
        assert watermark is not None

        # Caught up: polling with the watermark returns nothing new.
        again = broker.get_new_files_page(query, cursor=watermark, page_size=10, now=1000)
        assert again.empty
        assert again.next_cursor is None  # nothing newer to checkpoint

        # A late out-of-nominal-order publication appears on the next poll.
        db.insert(_record(300, available_at=500, collector="late"))
        later = broker.get_new_files_page(query, cursor=watermark, page_size=10, now=1000)
        assert [f.collector for f in later] == ["late"]

    def test_publication_pages_bounded_and_complete(self):
        db = MetadataDB()
        for i in range(9):
            db.insert(_record(i * 900, available_at=10 + i))
        broker = Broker(db=db)
        query = BrokerQuery(interval_start=0, interval_end=None)
        cursor = None
        seen = []
        while True:
            page = broker.get_new_files_page(query, cursor=cursor, page_size=4, now=10**9)
            if page.empty:
                break
            assert len(page) <= 4
            seen.extend(f.path for f in page)
            cursor = page.next_cursor
        assert len(seen) == len(set(seen)) == 9
