"""Tests for the paginated Broker client: throttling, retry, resumption."""

from __future__ import annotations

import pytest

from repro.broker.broker import Broker, BrokerQuery
from repro.broker.client import BrokerClient, BrokerRequestError, LocalBrokerTransport
from repro.broker.db import DumpFileRecord, MetadataDB
from repro.utils.timeutil import SimulatedClock


def _record(timestamp, collector="rrc0"):
    return DumpFileRecord(
        "ris", collector, "updates", timestamp, 900,
        f"/a/{collector}/{timestamp}.mrt.gz", timestamp + 960,
    )


def _broker(n=20):
    db = MetadataDB()
    for i in range(n):
        db.insert(_record(i * 900))
    return Broker(db=db, window_span=7200)


class FlakyTransport:
    """Fails the first ``failures`` requests, then delegates."""

    def __init__(self, inner, failures):
        self.inner = inner
        self.failures = failures
        self.calls = 0

    def get_window(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise BrokerRequestError("transient")
        return self.inner.get_window(*args, **kwargs)

    def get_new_files_page(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise BrokerRequestError("transient")
        return self.inner.get_new_files_page(*args, **kwargs)


class TestPagedPulls:
    def test_iter_files_covers_the_query(self):
        broker = _broker(20)
        client = BrokerClient(broker, page_size=3)
        query = BrokerQuery(interval_start=0, interval_end=20 * 900)
        paths = [f.path for f in client.iter_files(query)]
        assert len(paths) == len(set(paths)) == 20
        assert client.requests_sent == len(list(
            BrokerClient(broker, page_size=3).iter_pages(query)
        ))

    def test_cursor_resume_skips_served_pages(self):
        broker = _broker(20)
        query = BrokerQuery(interval_start=0, interval_end=20 * 900)
        client = BrokerClient(broker, page_size=4)
        pages = client.iter_pages(query)
        first = next(pages)
        pages.close()

        resumed = BrokerClient(broker, page_size=4)
        rest = [f.path for f in resumed.iter_files(query, cursor=first.next_cursor)]
        served = [f.path for f in first.files]
        assert not set(served) & set(rest)
        assert len(served) + len(rest) == 20

    def test_constructor_validation(self):
        broker = _broker(1)
        with pytest.raises(ValueError):
            BrokerClient()  # neither broker nor transport
        with pytest.raises(ValueError):
            BrokerClient(broker, transport=LocalBrokerTransport(broker))  # both
        with pytest.raises(ValueError):
            BrokerClient(broker, page_size=0)


class TestThrottling:
    def test_requests_spaced_by_min_interval(self):
        broker = _broker(12)
        clock = SimulatedClock(start=1000.0)
        client = BrokerClient(
            broker, page_size=3, min_request_interval=2.0, clock=clock
        )
        query = BrokerQuery(interval_start=0, interval_end=12 * 900)
        list(client.iter_pages(query))
        assert client.requests_sent >= 4
        # Every request after the first waited out the interval.
        assert clock.now() >= 1000.0 + 2.0 * (client.requests_sent - 1)
        assert client.throttle_waits > 0

    def test_no_throttle_by_default(self):
        broker = _broker(6)
        clock = SimulatedClock()
        client = BrokerClient(broker, page_size=2, clock=clock)
        list(client.iter_pages(BrokerQuery(interval_start=0, interval_end=6 * 900)))
        assert clock.now() == 0.0
        assert client.throttle_waits == 0


class TestRetry:
    def test_transient_failures_retried_with_backoff(self):
        broker = _broker(4)
        clock = SimulatedClock()
        flaky = FlakyTransport(LocalBrokerTransport(broker), failures=2)
        client = BrokerClient(
            transport=flaky, page_size=10, max_retries=3,
            backoff_base=0.5, clock=clock,
        )
        query = BrokerQuery(interval_start=0, interval_end=4 * 900)
        files = [f for f in client.iter_files(query)]
        assert len(files) == 4
        assert client.retries == 2
        # Exponential: 0.5 then 1.0 seconds slept on the injected clock.
        assert clock.now() == pytest.approx(1.5)

    def test_retries_exhausted_raises(self):
        broker = _broker(2)
        flaky = FlakyTransport(LocalBrokerTransport(broker), failures=10)
        client = BrokerClient(
            transport=flaky, page_size=10, max_retries=2, clock=SimulatedClock()
        )
        with pytest.raises(BrokerRequestError):
            list(client.iter_files(BrokerQuery(interval_start=0, interval_end=900)))
        assert client.retries == 2

    def test_backoff_capped(self):
        broker = _broker(1)
        clock = SimulatedClock()
        flaky = FlakyTransport(LocalBrokerTransport(broker), failures=5)
        client = BrokerClient(
            transport=flaky, page_size=10, max_retries=5,
            backoff_base=10.0, backoff_cap=15.0, clock=clock,
        )
        list(client.iter_files(BrokerQuery(interval_start=0, interval_end=900)))
        # 10, 15, 15, 15, 15 — never beyond the cap.
        assert clock.now() == pytest.approx(70.0)


class TestLivePolling:
    def test_poll_published_watermark_loop(self):
        db = MetadataDB()
        db.insert(_record(0))
        broker = Broker(db=db)
        client = BrokerClient(broker, page_size=10)
        query = BrokerQuery(interval_start=0, interval_end=None)

        first = client.poll_published(query, now=10**9)
        assert len(first.files) == 1
        watermark = first.next_cursor

        again = client.poll_published(query, cursor=watermark, now=10**9)
        assert again.empty

        db.insert(_record(900, collector="rrc1"))
        fresh = client.poll_published(query, cursor=watermark, now=10**9)
        assert [f.collector for f in fresh.files] == ["rrc1"]
