"""Tests for the Broker meta-data provider: DB, crawler and query windows."""

from __future__ import annotations

import pytest

from repro.broker.broker import Broker, BrokerQuery, BrokerResponse
from repro.broker.crawler import ArchiveCrawler
from repro.broker.db import DumpFileRecord, MetadataDB
from repro.collectors.archive import Archive


def _record(
    project="ris",
    collector="rrc0",
    dump_type="updates",
    timestamp=0,
    duration=300,
    path=None,
    available_at=None,
):
    path = path or f"/archive/{project}/{collector}/{dump_type}/{timestamp}.mrt.gz"
    if available_at is None:
        available_at = timestamp + duration + 60
    return DumpFileRecord(project, collector, dump_type, timestamp, duration, path, available_at)


class TestMetadataDB:
    def test_insert_and_count(self):
        db = MetadataDB()
        assert db.insert(_record(timestamp=0))
        assert db.insert(_record(timestamp=300))
        assert db.count() == 2
        assert db.collectors() == ["rrc0"]

    def test_duplicate_path_rejected(self):
        db = MetadataDB()
        record = _record()
        assert db.insert(record)
        assert not db.insert(record)
        assert db.count() == 1

    def test_query_filters(self):
        db = MetadataDB()
        db.insert(_record(project="ris", collector="rrc0", timestamp=0))
        db.insert(_record(project="routeviews", collector="route-views2", timestamp=0))
        db.insert(
            _record(project="ris", collector="rrc0", dump_type="ribs", timestamp=0, duration=120)
        )
        assert len(db.query()) == 3
        assert len(db.query(projects=["ris"])) == 2
        assert len(db.query(collectors=["route-views2"])) == 1
        assert len(db.query(dump_types=["ribs"])) == 1
        assert len(db.query(projects=["ris"], dump_types=["updates"])) == 1

    def test_query_interval_intersection(self):
        db = MetadataDB()
        db.insert(_record(timestamp=0, duration=300))
        db.insert(_record(timestamp=300, duration=300))
        db.insert(_record(timestamp=900, duration=300))
        hits = db.query(interval_start=250, interval_end=350)
        assert [h.timestamp for h in hits] == [0, 300]

    def test_query_visibility(self):
        db = MetadataDB()
        db.insert(_record(timestamp=0, available_at=500))
        assert db.query(visible_at=499) == []
        assert len(db.query(visible_at=500)) == 1

    def test_latest_available_time(self):
        db = MetadataDB()
        assert db.latest_available_time() is None
        db.insert(_record(timestamp=0, duration=300, available_at=400))
        db.insert(_record(timestamp=300, duration=300, available_at=700))
        assert db.latest_available_time() == 600
        assert db.latest_available_time(visible_at=500) == 300

    def test_file_backed_db(self, tmp_path):
        db = MetadataDB(str(tmp_path / "meta" / "broker.sqlite"))
        db.insert(_record())
        db.close()
        reopened = MetadataDB(str(tmp_path / "meta" / "broker.sqlite"))
        assert reopened.count() == 1


class TestCrawler:
    def test_crawl_indexes_new_files_once(self, tmp_path):
        archive = Archive(str(tmp_path))
        dump = str(tmp_path / "a.mrt.gz")
        open(dump, "wb").close()
        archive.publish("ris", "rrc0", "updates", 0, 300, dump, available_at=400)
        db = MetadataDB()
        crawler = ArchiveCrawler(db, [archive])
        assert crawler.crawl() == 1
        assert crawler.crawl() == 0  # already indexed

    def test_crawl_respects_publication_time(self, tmp_path):
        archive = Archive(str(tmp_path))
        dump = str(tmp_path / "a.mrt.gz")
        open(dump, "wb").close()
        archive.publish("ris", "rrc0", "updates", 0, 300, dump, available_at=1000)
        db = MetadataDB()
        crawler = ArchiveCrawler(db, [archive])
        assert crawler.crawl(now=999) == 0
        assert crawler.crawl(now=1000) == 1


class TestBrokerWindows:
    def _broker(self):
        db = MetadataDB()
        # 4 hours of 15-minute updates dumps plus RIBs every 2 hours, 2 collectors.
        for collector, project in [("route-views2", "routeviews"), ("rrc0", "ris")]:
            for ts in range(0, 4 * 3600, 900):
                db.insert(
                    _record(project=project, collector=collector, timestamp=ts, duration=900)
                )
            for ts in range(0, 4 * 3600, 7200):
                db.insert(
                    _record(
                        project=project,
                        collector=collector,
                        dump_type="ribs",
                        timestamp=ts,
                        duration=120,
                    )
                )
        return Broker(db=db, window_span=7200)

    def test_historical_windows_cover_interval_without_duplicates(self):
        broker = self._broker()
        query = BrokerQuery(interval_start=0, interval_end=4 * 3600)
        responses = list(broker.iter_windows(query))
        assert len(responses) == 2
        all_paths = [f.path for r in responses for f in r]
        assert len(all_paths) == len(set(all_paths))
        # 2 collectors x (16 updates + 2 ribs) = 36 files in total.
        assert len(all_paths) == 36
        assert responses[0].more_data
        assert not responses[-1].more_data

    def test_window_filters_by_project_and_type(self):
        broker = self._broker()
        query = BrokerQuery(
            projects=("ris",), dump_types=("ribs",), interval_start=0, interval_end=4 * 3600
        )
        files = [f for r in broker.iter_windows(query) for f in r]
        assert len(files) == 2
        assert all(f.project == "ris" and f.dump_type == "ribs" for f in files)

    def test_empty_interval_returns_empty_final_response(self):
        broker = self._broker()
        query = BrokerQuery(interval_start=10_000_000, interval_end=10_000_100)
        response = broker.get_window(query)
        assert response.empty
        assert not response.more_data

    def test_live_mode_polling_reveals_new_data(self, tmp_path):
        archive = Archive(str(tmp_path))
        dump1 = str(tmp_path / "a.mrt.gz")
        dump2 = str(tmp_path / "b.mrt.gz")
        open(dump1, "wb").close()
        open(dump2, "wb").close()
        archive.publish("ris", "rrc0", "updates", 0, 300, dump1, available_at=350)
        archive.publish("ris", "rrc0", "updates", 300, 300, dump2, available_at=650)
        broker = Broker(archives=[archive], window_span=7200)
        query = BrokerQuery(interval_start=0, interval_end=None)

        early = broker.get_window(query, now=100)
        assert early.empty and early.more_data  # nothing published yet: poll again
        later = broker.get_window(query, now=400)
        assert [f.path for f in later] == [dump1]
        assert later.more_data
        latest = broker.get_window(query, from_time=300, now=1000)
        assert [f.path for f in latest] == [dump2]

    def test_iter_windows_rejects_live_queries(self):
        broker = self._broker()
        with pytest.raises(ValueError):
            list(broker.iter_windows(BrokerQuery(interval_start=0, interval_end=None)))

    def test_response_helpers(self):
        response = BrokerResponse()
        assert response.empty and len(response) == 0
        response.files.append(_record())
        assert len(list(iter(response))) == 1
