"""Tests for resumable incremental crawls: high-water marks, kill-and-resume,
corruption recovery."""

from __future__ import annotations

import pytest

from repro.broker.crawler import ArchiveCrawler, archive_identity
from repro.broker.db import MetadataDB
from repro.collectors.archive import Archive


def _publish(archive, tmp_path, name, timestamp, available_at=None, duration=300):
    dump = str(tmp_path / f"{name}.mrt.gz")
    open(dump, "wb").close()
    archive.publish(
        "ris", "rrc0", "updates", timestamp, duration, dump,
        available_at=available_at if available_at is not None else timestamp + duration + 60,
    )
    return dump


class TestIncrementalCrawl:
    def test_restart_scans_only_new_entries(self, tmp_path):
        archive = Archive(str(tmp_path))
        for i in range(10):
            _publish(archive, tmp_path, f"a{i}", i * 300)
        db_path = str(tmp_path / "broker.db")
        db = MetadataDB(db_path)
        crawler = ArchiveCrawler(db, [archive])
        assert crawler.crawl() == 10
        assert crawler.entries_scanned == 10
        db.close()

        # Five more files appear; a *new process* (fresh crawler, reopened
        # db) must scan only those five, resuming from the persisted mark.
        for i in range(10, 15):
            _publish(archive, tmp_path, f"a{i}", i * 300)
        db2 = MetadataDB(db_path)
        crawler2 = ArchiveCrawler(db2, [archive])
        assert crawler2.crawl() == 5
        assert crawler2.entries_scanned == 5
        assert db2.count() == 15

    def test_crawl_state_persisted(self, tmp_path):
        archive = Archive(str(tmp_path))
        for i in range(4):
            _publish(archive, tmp_path, f"a{i}", i * 300)
        db = MetadataDB(str(tmp_path / "broker.db"))
        ArchiveCrawler(db, [archive]).crawl()
        state = db.get_crawl_state(archive_identity(archive))
        assert state is not None
        assert state.position == 4
        assert state.files_indexed == 4

    def test_pending_entry_pins_the_mark(self, tmp_path):
        # An entry published in the future must pin the high-water mark:
        # later-positioned entries are indexed, but the mark stays put so
        # the pending entry is re-scanned (and picked up) next poll.
        archive = Archive(str(tmp_path))
        _publish(archive, tmp_path, "a0", 0, available_at=100)
        _publish(archive, tmp_path, "a1", 300, available_at=10_000)  # pending
        _publish(archive, tmp_path, "a2", 600, available_at=100)
        db = MetadataDB()
        crawler = ArchiveCrawler(db, [archive])
        assert crawler.crawl(now=200) == 2  # a0 and a2, not a1
        state = db.get_crawl_state(archive_identity(archive))
        assert state.position == 1  # pinned at the pending entry
        assert crawler.crawl(now=10_000) == 1  # a1 now visible
        assert db.count() == 3
        assert db.get_crawl_state(archive_identity(archive)).position == 3

    def test_empty_poll_cheap_and_stable(self, tmp_path):
        archive = Archive(str(tmp_path))
        _publish(archive, tmp_path, "a0", 0)
        db = MetadataDB()
        crawler = ArchiveCrawler(db, [archive])
        crawler.crawl()
        scanned = crawler.entries_scanned
        assert crawler.crawl() == 0
        assert crawler.entries_scanned == scanned  # nothing re-scanned


class TestKillAndResume:
    def test_interrupted_crawl_loses_no_files(self, tmp_path):
        """A crawler killed mid-crawl resumes losing nothing: every file is
        indexed exactly once across the interrupted and resumed crawls."""
        archive = Archive(str(tmp_path))
        for i in range(10):
            _publish(archive, tmp_path, f"a{i}", i * 300)
        db_path = str(tmp_path / "broker.db")
        db = MetadataDB(db_path)

        # Simulate the kill: the db accepts exactly one batch commit, then
        # the process dies (the exception models SIGKILL between batches).
        real_apply = db.apply_crawl_batch
        commits = {"n": 0}

        def dying_apply(*args, **kwargs):
            if commits["n"] >= 1:
                raise RuntimeError("killed")
            commits["n"] += 1
            return real_apply(*args, **kwargs)

        db.apply_crawl_batch = dying_apply
        crawler = ArchiveCrawler(db, [archive], batch_size=4)
        with pytest.raises(RuntimeError):
            crawler.crawl()
        db.close()

        # First batch (4 files) committed with its mark; the rest is lost.
        db2 = MetadataDB(db_path)
        assert db2.count() == 4
        state = db2.get_crawl_state(archive_identity(archive))
        assert state.position == 4

        # Restart: the resumed crawl indexes exactly the missing files.
        crawler2 = ArchiveCrawler(db2, [archive], batch_size=4)
        assert crawler2.crawl() == 6
        assert db2.count() == 10
        assert crawler2.entries_scanned == 6  # no re-scan of committed work
        assert len(db2.known_paths()) == 10

    def test_crash_between_batches_never_skips(self, tmp_path):
        # Kill after every possible batch boundary; the resume must always
        # converge on the complete index with no duplicates.
        archive = Archive(str(tmp_path))
        for i in range(9):
            _publish(archive, tmp_path, f"a{i}", i * 300)
        for allowed_commits in range(4):
            db = MetadataDB()
            real_apply = db.apply_crawl_batch
            commits = {"n": 0}

            def dying_apply(*args, **kwargs):
                if commits["n"] >= allowed_commits:
                    raise RuntimeError("killed")
                commits["n"] += 1
                return real_apply(*args, **kwargs)

            db.apply_crawl_batch = dying_apply
            crawler = ArchiveCrawler(db, [archive], batch_size=3)
            try:
                crawler.crawl()
            except RuntimeError:
                pass
            db.apply_crawl_batch = real_apply
            ArchiveCrawler(db, [archive], batch_size=3).crawl()
            assert db.count() == 9, f"lost files with {allowed_commits} commits"


class TestCorruptionRecovery:
    def test_corrupt_db_rebuilt_and_recrawled(self, tmp_path):
        archive = Archive(str(tmp_path))
        for i in range(5):
            _publish(archive, tmp_path, f"a{i}", i * 300)
        db_path = str(tmp_path / "broker.db")
        db = MetadataDB(db_path)
        ArchiveCrawler(db, [archive]).crawl()
        assert db.count() == 5
        db.close()

        # Clobber the database file.
        with open(db_path, "wb") as handle:
            handle.write(b"this is not a sqlite database, sorry")

        db2 = MetadataDB(db_path)
        assert db2.recovered_from_corruption
        assert db2.count() == 0
        # The damaged file is preserved, never silently destroyed.
        assert (tmp_path / "broker.db.corrupt").exists()

        # Crawl state died with the db, so the next crawl is a full re-scan.
        crawler = ArchiveCrawler(db2, [archive])
        assert crawler.crawl() == 5
        assert db2.count() == 5

    def test_recrawl_after_archive_rewrite(self, tmp_path):
        archive = Archive(str(tmp_path))
        for i in range(5):
            _publish(archive, tmp_path, f"a{i}", i * 300)
        db = MetadataDB()
        crawler = ArchiveCrawler(db, [archive])
        crawler.crawl()
        # recrawl() resets the marks and is idempotent on an intact index.
        assert crawler.recrawl() == 0
        assert db.count() == 5

    def test_shrunken_index_triggers_full_rescan(self, tmp_path):
        archive = Archive(str(tmp_path))
        for i in range(5):
            _publish(archive, tmp_path, f"a{i}", i * 300)
        db = MetadataDB()
        crawler = ArchiveCrawler(db, [archive])
        crawler.crawl()
        # The index file is truncated/rewritten externally: the persisted
        # position now exceeds the entry count, so the crawler falls back
        # to scanning from zero (duplicates absorbed by the db).
        rewritten = Archive(str(tmp_path / "rebuilt"))
        _publish(rewritten, tmp_path / "rebuilt", "b0", 0)
        db.apply_crawl_batch(
            archive_identity(rewritten), [], position=99, last_available=0.0
        )
        fresh = ArchiveCrawler(db, [rewritten])
        assert fresh.crawl() == 1
