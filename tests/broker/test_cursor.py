"""Tests for the opaque, self-validating pagination cursors."""

from __future__ import annotations

import pytest

from repro.broker.broker import BrokerQuery
from repro.broker.cursor import (
    CursorError,
    decode_cursor,
    encode_cursor,
    query_fingerprint,
)


class TestCursorRoundtrip:
    def test_roundtrip_preserves_payload(self):
        payload = {"w": 3600, "ts": 4200, "id": 17}
        cursor = encode_cursor(dict(payload), "fp1")
        assert decode_cursor(cursor, "fp1") == payload

    def test_cursor_is_opaque_ascii(self):
        cursor = encode_cursor({"w": 0}, "fp")
        assert isinstance(cursor, str)
        assert cursor.isascii()
        assert "{" not in cursor  # not plain JSON

    def test_roundtrip_without_fingerprint_check(self):
        cursor = encode_cursor({"pub": 12.5, "id": 3}, "whatever")
        assert decode_cursor(cursor)["pub"] == 12.5


class TestCursorValidation:
    def test_tampered_cursor_rejected(self):
        cursor = encode_cursor({"w": 100}, "fp")
        tampered = cursor[:-2] + ("AA" if not cursor.endswith("AA") else "BB")
        with pytest.raises(CursorError):
            decode_cursor(tampered, "fp")

    def test_garbage_rejected(self):
        with pytest.raises(CursorError):
            decode_cursor("not-a-cursor!!", None)
        with pytest.raises(CursorError):
            decode_cursor("", None)

    def test_wrong_fingerprint_rejected(self):
        cursor = encode_cursor({"w": 100}, "fp-a")
        with pytest.raises(CursorError):
            decode_cursor(cursor, "fp-b")

    def test_cursor_error_is_value_error(self):
        assert issubclass(CursorError, ValueError)


class TestQueryFingerprint:
    def test_same_query_same_fingerprint(self):
        a = BrokerQuery(projects=("ris",), interval_start=0, interval_end=100)
        b = BrokerQuery(projects=("ris",), interval_start=0, interval_end=100)
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_parameter_change_changes_fingerprint(self):
        base = BrokerQuery(projects=("ris",), interval_start=0, interval_end=100)
        for other in [
            BrokerQuery(projects=("routeviews",), interval_start=0, interval_end=100),
            BrokerQuery(projects=("ris",), interval_start=1, interval_end=100),
            BrokerQuery(projects=("ris",), interval_start=0, interval_end=101),
            BrokerQuery(projects=("ris",), collectors=("rrc0",), interval_start=0, interval_end=100),
            BrokerQuery(projects=("ris",), dump_types=("ribs",), interval_start=0, interval_end=100),
        ]:
            assert query_fingerprint(base) != query_fingerprint(other)

    def test_live_and_bounded_differ(self):
        live = BrokerQuery(interval_start=0, interval_end=None)
        bounded = BrokerQuery(interval_start=0, interval_end=3600)
        assert query_fingerprint(live) != query_fingerprint(bounded)
