"""Tests for the persistent decoded-segment cache."""

from __future__ import annotations

import os
import pickle

import pytest

from repro import _profiling as profiling
from repro.broker.broker import Broker
from repro.broker.crawler import ArchiveCrawler
from repro.broker.db import MetadataDB
from repro.broker.segments import SegmentCache
from repro.core.interfaces import DumpFileSpec
from repro.core.sorter import DumpFileReader
from repro.core.stream import BGPStream


def _specs_for(archive):
    return [
        DumpFileSpec(
            path=e.path,
            project=e.project,
            collector=e.collector,
            dump_type=e.dump_type,
            timestamp=e.timestamp,
            duration=e.duration,
        )
        for e in archive.entries()
    ]


def _flatten(record):
    return (
        record.time,
        record.project,
        record.collector,
        record.dump_type,
        record.status,
        record.dump_position,
        tuple(
            (e.elem_type, e.time, str(e.prefix) if e.prefix else None,
             str(e.as_path) if e.as_path else None, e.peer_asn)
            for e in record.elems()
        ),
    )


class TestRoundtrip:
    def test_cached_records_identical_to_decoded(self, tmp_path, broker_archive):
        cache = SegmentCache(str(tmp_path / "cache"))
        spec = _specs_for(broker_archive)[0]
        cold = [_flatten(r) for r in DumpFileReader(spec, segment_cache=cache)]
        assert cache.stats()["stores"] == 1
        warm = [_flatten(r) for r in DumpFileReader(spec, segment_cache=cache)]
        assert cache.stats()["hits"] == 1
        plain = [_flatten(r) for r in DumpFileReader(spec)]
        assert cold == warm == plain

    def test_all_files_roundtrip(self, tmp_path, broker_archive):
        cache = SegmentCache(str(tmp_path / "cache"))
        for spec in _specs_for(broker_archive):
            cold = [_flatten(r) for r in DumpFileReader(spec, segment_cache=cache)]
            warm = [_flatten(r) for r in DumpFileReader(spec, segment_cache=cache)]
            assert cold == warm

    def test_abandoned_iteration_not_stored(self, tmp_path, broker_archive):
        cache = SegmentCache(str(tmp_path / "cache"))
        spec = _specs_for(broker_archive)[0]
        iterator = iter(DumpFileReader(spec, segment_cache=cache))
        next(iterator)
        iterator.close()
        assert cache.stats()["stores"] == 0


class TestInvalidation:
    def test_changed_file_misses(self, tmp_path, broker_archive):
        cache = SegmentCache(str(tmp_path / "cache"))
        spec = _specs_for(broker_archive)[0]
        source = str(tmp_path / "copy.mrt.gz")
        with open(spec.path, "rb") as src, open(source, "wb") as dst:
            dst.write(src.read())
        local = DumpFileSpec(source, spec.project, spec.collector,
                             spec.dump_type, spec.timestamp, spec.duration)
        list(DumpFileReader(local, segment_cache=cache))
        assert cache.stats()["stores"] == 1
        # Rewrite the file: the stale segment must not be served.
        with open(source, "ab") as handle:
            handle.write(b"\x00" * 16)
        os.utime(source, ns=(1, 1))
        list(DumpFileReader(local, segment_cache=cache))
        assert cache.stats()["hits"] == 0

    def test_corrupt_segment_file_is_a_miss(self, tmp_path, broker_archive):
        cache = SegmentCache(str(tmp_path / "cache"))
        spec = _specs_for(broker_archive)[0]
        baseline = [_flatten(r) for r in DumpFileReader(spec, segment_cache=cache)]
        (filename,) = [
            f for f in os.listdir(cache.root) if f.endswith(".seg")
        ]
        with open(os.path.join(cache.root, filename), "wb") as handle:
            handle.write(b"torn write garbage")
        recovered = [_flatten(r) for r in DumpFileReader(spec, segment_cache=cache)]
        assert recovered == baseline
        assert cache.stats()["hits"] == 0
        # The bad segment was dropped and re-stored by the recovery read.
        assert cache.stats()["stores"] == 2

    def test_corrupt_segment_is_quarantined_and_counted(self, tmp_path, broker_archive):
        cache = SegmentCache(str(tmp_path / "cache"))
        spec = _specs_for(broker_archive)[0]
        list(DumpFileReader(spec, segment_cache=cache))
        (filename,) = [f for f in os.listdir(cache.root) if f.endswith(".seg")]
        with open(os.path.join(cache.root, filename), "wb") as handle:
            handle.write(b"torn write garbage")
        counters = profiling.enable()
        try:
            list(DumpFileReader(spec, segment_cache=cache))
            # The torn file is preserved for forensics, not deleted ...
            assert os.path.exists(os.path.join(cache.root, filename + ".corrupt"))
            assert not os.path.exists(os.path.join(cache.root, filename + ".corrupt.seg"))
            # ... its manifest row is gone, and the event is counted.
            assert cache.corrupt == 1
            assert cache.stats()["corrupt"] == 1
            assert counters.segment_corrupt == 1
            assert "segment files corrupt" in "\n".join(counters.summary_lines())
        finally:
            profiling.disable()

    def test_missing_source_file_never_stored(self, tmp_path):
        cache = SegmentCache(str(tmp_path / "cache"))
        ghost = DumpFileSpec(str(tmp_path / "missing.mrt.gz"),
                             "ris", "rrc0", "updates", 0, 300)
        records = list(DumpFileReader(ghost, segment_cache=cache))
        assert len(records) == 1  # the CORRUPTED_SOURCE marker record
        assert cache.stats()["stores"] == 0


class TestEviction:
    def test_lru_eviction_respects_budget(self, tmp_path, broker_archive):
        specs = _specs_for(broker_archive)
        big = SegmentCache(str(tmp_path / "big"))
        sizes = []
        for spec in specs:
            list(DumpFileReader(spec, segment_cache=big))
        total = big.stats()["bytes_used"]
        assert total > 0
        # A cache half that size must evict but stay within budget.
        small = SegmentCache(str(tmp_path / "small"), max_bytes=max(total // 2, 1))
        for spec in specs:
            list(DumpFileReader(spec, segment_cache=small))
        stats = small.stats()
        assert stats["bytes_used"] <= small.max_bytes
        assert stats["evictions"] > 0
        assert stats["segments"] >= 1  # the newest segment always survives

    def test_clear_removes_everything(self, tmp_path, broker_archive):
        cache = SegmentCache(str(tmp_path / "cache"))
        for spec in _specs_for(broker_archive)[:2]:
            list(DumpFileReader(spec, segment_cache=cache))
        cache.clear()
        stats = cache.stats()
        assert stats["segments"] == 0 and stats["bytes_used"] == 0
        assert not [f for f in os.listdir(cache.root) if f.endswith(".seg")]

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentCache(str(tmp_path / "cache"), max_bytes=0)


class TestProcessBoundaries:
    def test_pickles_by_configuration(self, tmp_path, broker_archive):
        cache = SegmentCache(str(tmp_path / "cache"), max_bytes=12345)
        spec = _specs_for(broker_archive)[0]
        list(DumpFileReader(spec, segment_cache=cache))
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.root == cache.root and clone.max_bytes == 12345
        # The clone sees the same on-disk segments.
        assert [_flatten(r) for r in DumpFileReader(spec, segment_cache=clone)] == [
            _flatten(r) for r in DumpFileReader(spec)
        ]
        assert clone.hits == 1


class TestProfilingCounters:
    def test_decode_stats_surface_hits_and_misses(self, tmp_path, broker_archive):
        cache = SegmentCache(str(tmp_path / "cache"))
        spec = _specs_for(broker_archive)[0]
        counters = profiling.enable()
        try:
            list(DumpFileReader(spec, segment_cache=cache))
            assert counters.segment_misses == 1
            assert counters.segment_hits == 0
            list(DumpFileReader(spec, segment_cache=cache))
            assert counters.segment_hits == 1
            lines = "\n".join(counters.summary_lines())
            assert "segment cache hits" in lines
        finally:
            profiling.disable()


class TestResumeWithoutRedecode:
    def test_interrupted_crawl_and_replay_redecodes_nothing_cached(
        self, tmp_path, broker_archive, broker_scenario
    ):
        """The PR's end-to-end acceptance path: an interrupted incremental
        crawl loses no files, and the resumed replay re-decodes nothing the
        segment cache already holds."""
        db_path = str(tmp_path / "broker.db")
        cache = SegmentCache(str(tmp_path / "segments"))
        start, end = broker_scenario.start, broker_scenario.end

        # --- first run: killed after one committed crawl batch ------------
        db = MetadataDB(db_path)
        real_apply = db.apply_crawl_batch
        commits = {"n": 0}

        def dying_apply(*args, **kwargs):
            if commits["n"] >= 1:
                raise RuntimeError("killed")
            commits["n"] += 1
            return real_apply(*args, **kwargs)

        db.apply_crawl_batch = dying_apply
        crawler = ArchiveCrawler(db, [broker_archive], batch_size=3)
        with pytest.raises(RuntimeError):
            crawler.crawl()
        db.apply_crawl_batch = real_apply

        # Replay (and cache) what the partial index already knows about.
        broker = Broker(db=db)
        partial = BGPStream(broker=broker, segment_cache=cache, parallel=False)
        partial.add_interval_filter(start, end)
        partial_records = sum(1 for _ in partial.records())
        assert partial_records > 0
        stored_before = cache.stats()["stores"]
        assert stored_before == db.count() == 3
        db.close()

        # --- restart: resume the crawl, replay the full window ------------
        db2 = MetadataDB(db_path)
        crawler2 = ArchiveCrawler(db2, [broker_archive], batch_size=3)
        crawler2.crawl()
        assert db2.count() == len(broker_archive.entries())  # nothing lost

        broker2 = Broker(db=db2)
        full = BGPStream(broker=broker2, segment_cache=cache, parallel=False)
        full.add_interval_filter(start, end)
        full_count = sum(1 for _ in full.records())
        assert full_count >= partial_records

        stats = cache.stats()
        # Every file cached before the kill replayed from its segment...
        assert stats["hits"] >= stored_before
        # ...and only the files the resumed crawl added were decoded anew.
        assert stats["stores"] == db2.count()
        baseline = BGPStream(broker=Broker(db=db2), parallel=False)
        baseline.add_interval_filter(start, end)
        assert full_count == sum(1 for _ in baseline.records())
