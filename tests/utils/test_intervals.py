"""Tests for time intervals and the overlap-grouping algorithm of §3.3.4."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.intervals import (
    TimeInterval,
    group_overlapping,
    merge_intervals,
    split_interval,
)


class TestTimeInterval:
    def test_duration(self):
        assert TimeInterval(10, 25).duration == 15

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            TimeInterval(10, 5)

    def test_overlap_symmetric(self):
        a = TimeInterval(0, 10)
        b = TimeInterval(10, 20)
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_no_overlap(self):
        assert not TimeInterval(0, 9).overlaps(TimeInterval(10, 20))

    def test_contains(self):
        interval = TimeInterval(100, 200)
        assert interval.contains(100)
        assert interval.contains(200)
        assert not interval.contains(201)

    def test_union(self):
        assert TimeInterval(0, 5).union(TimeInterval(3, 9)) == TimeInterval(0, 9)

    def test_intersect(self):
        assert TimeInterval(0, 5).intersect(TimeInterval(3, 9)) == TimeInterval(3, 5)
        assert TimeInterval(0, 2).intersect(TimeInterval(3, 9)) is None


class TestGroupOverlapping:
    def test_paper_example_shape(self):
        """The Figure 3 scenario: RIS 5-min updates + 8h RIB vs RV 15-min updates.

        Thirty minutes of data split into two disjoint sets because the RIS
        RIB dump interval bridges one group but not the other.
        """
        files = ["ris-upd-1", "ris-upd-2", "ris-upd-3", "rv-upd-1", "rv-upd-2", "ris-rib"]
        intervals = [
            TimeInterval(0, 300),
            TimeInterval(300, 600),
            TimeInterval(600, 900),
            TimeInterval(0, 900),
            TimeInterval(1200, 2100),
            TimeInterval(100, 400),
        ]
        groups = group_overlapping(files, intervals)
        assert len(groups) == 2
        first, second = groups
        assert set(first) == {"ris-upd-1", "ris-upd-2", "ris-upd-3", "rv-upd-1", "ris-rib"}
        assert set(second) == {"rv-upd-2"}

    def test_disjoint_items_each_get_own_group(self):
        intervals = [TimeInterval(i * 100, i * 100 + 50) for i in range(5)]
        groups = group_overlapping(list(range(5)), intervals)
        assert groups == [[0], [1], [2], [3], [4]]

    def test_transitive_overlap_is_one_group(self):
        # a overlaps b, b overlaps c, but a does not overlap c directly.
        intervals = [TimeInterval(0, 10), TimeInterval(9, 20), TimeInterval(19, 30)]
        groups = group_overlapping(["a", "b", "c"], intervals)
        assert groups == [["a", "b", "c"]]

    def test_empty(self):
        assert group_overlapping([], []) == []

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            group_overlapping(["a"], [])

    @given(
        st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(0, 3600)),
            min_size=1,
            max_size=40,
        )
    )
    def test_groups_partition_items(self, raw):
        """Property: grouping is a partition of the input items."""
        intervals = [TimeInterval(start, start + length) for start, length in raw]
        items = list(range(len(intervals)))
        groups = group_overlapping(items, intervals)
        flattened = [item for group in groups for item in group]
        assert sorted(flattened) == items

    @given(
        st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(0, 3600)),
            min_size=2,
            max_size=40,
        )
    )
    def test_groups_are_time_disjoint(self, raw):
        """Property: the covering interval of each group never overlaps another's."""
        intervals = [TimeInterval(start, start + length) for start, length in raw]
        items = list(range(len(intervals)))
        groups = group_overlapping(items, intervals)
        spans = []
        for group in groups:
            start = min(intervals[i].start for i in group)
            end = max(intervals[i].end for i in group)
            spans.append(TimeInterval(start, end))
        spans.sort()
        for left, right in zip(spans, spans[1:]):
            assert left.end < right.start


class TestMergeAndSplit:
    def test_merge_intervals(self):
        merged = merge_intervals(
            [TimeInterval(0, 10), TimeInterval(5, 20), TimeInterval(30, 40)]
        )
        assert merged == [TimeInterval(0, 20), TimeInterval(30, 40)]

    def test_split_interval_alignment(self):
        chunks = split_interval(TimeInterval(130, 350), 100)
        assert chunks == [(100, 200), (200, 300), (300, 400)]

    def test_split_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            split_interval(TimeInterval(0, 10), 0)
