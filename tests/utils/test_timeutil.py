"""Tests for clocks and time binning."""

from __future__ import annotations

import pytest

from repro.utils.timeutil import SimulatedClock, SystemClock, bin_start, iter_bins


class TestSimulatedClock:
    def test_starts_at_given_time(self):
        clock = SimulatedClock(1_000)
        assert clock.now() == 1_000

    def test_sleep_advances(self):
        clock = SimulatedClock(0)
        clock.sleep(30)
        assert clock.now() == 30

    def test_negative_sleep_rejected(self):
        clock = SimulatedClock(0)
        with pytest.raises(ValueError):
            clock.sleep(-1)

    def test_set_forward_only(self):
        clock = SimulatedClock(100)
        clock.set(200)
        assert clock.now() == 200
        with pytest.raises(ValueError):
            clock.set(50)


class TestSystemClock:
    def test_now_is_monotone_nondecreasing(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert second >= first


class TestBinning:
    def test_bin_start_aligns_to_epoch(self):
        assert bin_start(1_438_415_400, 300) == 1_438_415_400
        assert bin_start(1_438_415_401, 300) == 1_438_415_400

    def test_bin_start_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bin_start(10, 0)

    def test_iter_bins_covers_range(self):
        bins = list(iter_bins(100, 700, 300))
        assert bins == [0, 300, 600]

    def test_iter_bins_empty_range(self):
        assert list(iter_bins(300, 300, 300)) == []

    def test_iter_bins_rejects_inverted(self):
        with pytest.raises(ValueError):
            list(iter_bins(10, 0, 5))
