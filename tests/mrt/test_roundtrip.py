"""Golden round-trip tests for MRT I/O: writer → parser → equality.

Records written with :mod:`repro.mrt.writer` must re-parse with
:mod:`repro.mrt.parser` into *equal* record objects (header and decoded
body), truncated tails must surface as a single :class:`CorruptRecord`
signal, and the parser's header-index cache must never change what a re-read
returns.
"""

from __future__ import annotations

import os

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.fsm import SessionState
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.mrt import parser as mrt_parser
from repro.mrt.parser import read_dump
from repro.mrt.records import (
    BGP4MPMessage,
    BGP4MPStateChange,
    CorruptRecord,
    MRTRecord,
    PeerEntry,
    PeerIndexTable,
    RIBEntry,
    RIBPrefixRecord,
)
from repro.mrt.writer import MRTDumpWriter, corrupt_file


def _attrs(asns):
    return PathAttributes(as_path=ASPath.from_asns(asns), next_hop="10.0.0.1")


def _golden_records():
    """A dump exercising every record type the writer can produce."""
    peers = [
        PeerEntry("10.0.0.1", "10.0.0.1", 64500),
        PeerEntry("10.0.0.2", "2001:db8::2", 64501),
    ]
    index = PeerIndexTable("198.51.100.1", "default", peers)
    rib = RIBPrefixRecord(
        0,
        Prefix.from_string("192.0.2.0/24"),
        [RIBEntry(0, 900, _attrs([64500, 3356, 15169])), RIBEntry(1, 910, _attrs([64501, 15169]))],
    )
    message = BGP4MPMessage(
        64500,
        65000,
        "10.0.0.1",
        "10.0.0.254",
        BGPUpdate(
            announced=[Prefix.from_string("198.51.100.0/24")],
            withdrawn=[Prefix.from_string("203.0.113.0/24")],
            attributes=_attrs([64500, 1299]),
        ),
    )
    change = BGP4MPStateChange(
        64500, 65000, "10.0.0.1", "10.0.0.254", SessionState.ESTABLISHED, SessionState.IDLE
    )
    return [
        MRTRecord.peer_index_table(1000, index),
        MRTRecord.rib_prefix(1000, rib),
        MRTRecord.bgp4mp_message(1010, message),
        MRTRecord.bgp4mp_state_change(1020, change),
    ]


@pytest.mark.parametrize("compress", [False, True], ids=["plain", "gzip"])
def test_golden_round_trip_record_equality(tmp_path, compress):
    path = str(tmp_path / ("golden.mrt" + (".gz" if compress else "")))
    written = _golden_records()
    with MRTDumpWriter(path, compress=compress) as writer:
        writer.write_all(written)
    reread = read_dump(path)
    assert reread == written  # full dataclass equality: headers and bodies


def test_round_trip_is_byte_stable(tmp_path):
    """encode(decode(bytes)) == bytes for a whole dump."""
    path = str(tmp_path / "golden.mrt")
    with MRTDumpWriter(path) as writer:
        writer.write_all(_golden_records())
    with open(path, "rb") as handle:
        original = handle.read()
    assert b"".join(r.encode() for r in read_dump(path)) == original


def test_truncated_tail_signals_one_corrupt_record(tmp_path):
    path = str(tmp_path / "updates.mrt")
    written = _golden_records()
    with MRTDumpWriter(path) as writer:
        writer.write_all(written)
    size = os.path.getsize(path)
    last_len = len(written[-1].encode())
    # Truncate inside the last record's body: every earlier record survives
    # byte-identically, the tail becomes exactly one CorruptRecord signal.
    corrupt_file(path, truncate_at=size - last_len + 14)
    reread = read_dump(path)
    assert reread[:-1] == written[:-1]
    assert isinstance(reread[-1].body, CorruptRecord)
    assert not reread[-1].is_valid
    assert reread[-1].body.reason == "truncated record body"


@pytest.mark.parametrize("cut", [1, 5, 11])
def test_truncation_inside_a_header(tmp_path, cut):
    path = str(tmp_path / "updates.mrt")
    written = _golden_records()
    with MRTDumpWriter(path) as writer:
        writer.write_all(written)
    first_len = len(written[0].encode())
    corrupt_file(path, truncate_at=first_len + cut)
    reread = read_dump(path)
    assert reread[0] == written[0]
    assert len(reread) == 2
    assert isinstance(reread[1].body, CorruptRecord)
    assert "truncated MRT header" in reread[1].body.reason


def test_mid_file_undecodable_body_does_not_stop_the_read(tmp_path):
    """A record with intact framing but garbage payload is signalled and
    skipped; later records still parse (libBGPdump extension, §3.3.3)."""
    path = str(tmp_path / "updates.mrt")
    first, last = _golden_records()[2], _golden_records()[3]
    bad_body = b"\xff" * 10
    bad = bytearray(first.encode()[:12])
    bad[8:12] = len(bad_body).to_bytes(4, "big")
    with open(path, "wb") as handle:
        handle.write(first.encode() + bytes(bad) + bad_body + last.encode())
    reread = read_dump(path)
    assert len(reread) == 3
    assert reread[0] == first
    assert not reread[1].is_valid
    assert reread[2] == last


class TestHeaderIndexCache:
    def setup_method(self):
        mrt_parser.clear_index_cache()

    def test_reread_hits_cache_and_is_identical(self, tmp_path):
        path = str(tmp_path / "golden.mrt")
        with MRTDumpWriter(path) as writer:
            writer.write_all(_golden_records())
        first = read_dump(path)
        assert mrt_parser.cached_index(path) is not None
        assert len(mrt_parser.cached_index(path).entries) == len(first)
        second = read_dump(path)
        assert second == first

    def test_cache_invalidated_when_file_changes(self, tmp_path):
        path = str(tmp_path / "golden.mrt")
        written = _golden_records()
        with MRTDumpWriter(path) as writer:
            writer.write_all(written)
        read_dump(path)
        assert mrt_parser.cached_index(path) is not None
        # Rewrite with fewer records: the stale index must not be used.
        with MRTDumpWriter(path) as writer:
            writer.write_all(written[:2])
        assert mrt_parser.cached_index(path) is None
        assert read_dump(path) == written[:2]

    def test_corrupt_dump_is_never_cached(self, tmp_path):
        path = str(tmp_path / "golden.mrt")
        with MRTDumpWriter(path) as writer:
            writer.write_all(_golden_records())
        corrupt_file(path, truncate_at=os.path.getsize(path) - 3)
        read_dump(path)
        assert mrt_parser.cached_index(path) is None

    def test_compressed_dumps_are_indexed_too(self, tmp_path):
        """The index is built over the decompressed buffer of gzip dumps."""
        path = str(tmp_path / "golden.mrt.gz")
        with MRTDumpWriter(path, compress=True) as writer:
            writer.write_all(_golden_records())
        assert read_dump(path) == _golden_records()
        index = mrt_parser.cached_index(path)
        assert index is not None
        assert len(index.entries) == len(_golden_records())
        assert read_dump(path) == _golden_records()

    def test_corrupt_gzip_stream_falls_back_to_streaming_semantics(self, tmp_path):
        path = str(tmp_path / "golden.mrt.gz")
        with MRTDumpWriter(path, compress=True) as writer:
            writer.write_all(_golden_records())
        corrupt_file(path, truncate_at=os.path.getsize(path) - 4)  # clip CRC/size trailer
        records = read_dump(path)
        assert records, "a damaged gzip dump must still signal, not vanish"
        assert not records[-1].is_valid
        assert mrt_parser.cached_index(path) is None

    def test_mid_stream_gzip_corruption_signals_instead_of_raising(self, tmp_path):
        """A flipped byte inside the deflate stream must yield a read-error
        signal through the streaming fallback, never an exception."""
        path = str(tmp_path / "golden.mrt.gz")
        with MRTDumpWriter(path, compress=True) as writer:
            writer.write_all(_golden_records())
        data = bytearray(open(path, "rb").read())
        # Flip a byte mid-file: inside the deflate payload, past the variable
        # gzip header (which embeds the filename), before the CRC trailer.
        data[len(data) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(data)
        records = read_dump(path)  # must not raise
        assert records
        assert not records[-1].is_valid
        assert mrt_parser.cached_index(path) is None

    def test_oversized_decompressed_gzip_streams_instead_of_ballooning(
        self, tmp_path, monkeypatch
    ):
        """The bulk-scan gate bounds the *decompressed* size of gzip dumps."""
        path = str(tmp_path / "golden.mrt.gz")
        with MRTDumpWriter(path, compress=True) as writer:
            for _ in range(50):  # highly compressible: decompressed >> on-disk
                writer.write_all(_golden_records())
        expected = read_dump(path)
        assert len(expected) == 50 * len(_golden_records())
        mrt_parser.clear_index_cache()
        decompressed = len(b"".join(r.encode() for r in expected))
        assert os.path.getsize(path) < decompressed
        monkeypatch.setattr(mrt_parser, "BULK_SCAN_MAX", decompressed - 1)
        assert read_dump(path) == expected  # served by the streaming scan
        assert mrt_parser.cached_index(path) is None

    def test_record_cache_round_trip(self, tmp_path):
        path = str(tmp_path / "golden.mrt")
        with MRTDumpWriter(path) as writer:
            writer.write_all(_golden_records())
        first = read_dump(path, cache_records=True)
        index = mrt_parser.cached_index(path)
        assert index is not None and index.records is not None
        # The cached tier serves re-reads without re-decoding...
        second = read_dump(path)
        assert second == first
        assert second[0] is first[0], "re-read should serve the cached record objects"
        # ...and invalidates like the header tier.
        with MRTDumpWriter(path) as writer:
            writer.write_all(_golden_records()[:1])
        assert read_dump(path) == _golden_records()[:1]

    def test_use_index_false_bypasses_the_cache(self, tmp_path):
        path = str(tmp_path / "golden.mrt")
        with MRTDumpWriter(path) as writer:
            writer.write_all(_golden_records())
        assert read_dump(path, use_index=False) == _golden_records()
        assert mrt_parser.cached_index(path) is None

    def test_cache_is_bounded(self, tmp_path):
        records = _golden_records()[:1]
        limit = mrt_parser._INDEX_CACHE_MAX
        for i in range(limit + 20):
            path = str(tmp_path / f"d{i}.mrt")
            with MRTDumpWriter(path) as writer:
                writer.write_all(records)
            read_dump(path)
        assert mrt_parser.index_cache_size() <= limit
