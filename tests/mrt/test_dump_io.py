"""Tests for writing and reading whole MRT dump files."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.fsm import SessionState
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.mrt.parser import MRTDumpReader, MRTParseError, read_dump
from repro.mrt.records import (
    BGP4MPMessage,
    BGP4MPStateChange,
    PeerEntry,
    PeerIndexTable,
    RIBPrefixRecord,
)
from repro.mrt.writer import corrupt_file, write_rib_dump, write_updates_dump


def _attrs(asns):
    return PathAttributes(as_path=ASPath.from_asns(asns), next_hop="10.0.0.1")


def _make_rib(path, timestamp=1000, compress=False):
    peers = [
        PeerEntry("10.0.0.1", "10.0.0.1", 64500),
        PeerEntry("10.0.0.2", "10.0.0.2", 64501),
    ]
    tables = {
        0: {
            Prefix.from_string("192.0.2.0/24"): _attrs([64500, 3356, 15169]),
            Prefix.from_string("10.0.0.0/8"): _attrs([64500, 3356]),
        },
        1: {Prefix.from_string("192.0.2.0/24"): _attrs([64501, 1299, 15169])},
    }
    return write_rib_dump(path, timestamp, "198.51.100.1", peers, tables, compress=compress)


class TestRIBDumps:
    def test_write_and_read_back(self, tmp_path):
        path = str(tmp_path / "rib.mrt")
        written = _make_rib(path)
        records = read_dump(path)
        assert written == len(records) == 3  # index table + 2 prefixes
        assert isinstance(records[0].body, PeerIndexTable)
        assert all(isinstance(r.body, RIBPrefixRecord) for r in records[1:])
        assert all(r.is_valid for r in records)

    def test_gzip_round_trip(self, tmp_path):
        path = str(tmp_path / "rib.mrt.gz")
        _make_rib(path, compress=True)
        records = read_dump(path)
        assert len(records) == 3
        # File really is gzip-compressed on disk.
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"

    def test_prefixes_sorted_and_entries_per_peer(self, tmp_path):
        path = str(tmp_path / "rib.mrt")
        _make_rib(path)
        records = read_dump(path)
        prefixes = [str(r.body.prefix) for r in records[1:]]
        assert prefixes == ["10.0.0.0/8", "192.0.2.0/24"]
        shared = records[2].body
        assert [e.peer_index for e in shared.entries] == [0, 1]

    def test_record_timestamps_override(self, tmp_path):
        path = str(tmp_path / "rib.mrt")
        peers = [PeerEntry("10.0.0.1", "10.0.0.1", 64500)]
        tables = {0: {Prefix.from_string("192.0.2.0/24"): _attrs([64500])}}
        write_rib_dump(path, 1000, "198.51.100.1", peers, tables, record_timestamps={0: 1060})
        records = read_dump(path)
        assert records[0].timestamp == 1000
        assert records[1].timestamp == 1060


class TestUpdatesDumps:
    def test_write_and_read_back(self, tmp_path, sample_prefix):
        path = str(tmp_path / "updates.mrt")
        message = BGP4MPMessage(
            64500,
            65000,
            "10.0.0.1",
            "10.0.0.254",
            BGPUpdate(announced=[sample_prefix], attributes=_attrs([64500, 15169])),
        )
        change = BGP4MPStateChange(
            64500, 65000, "10.0.0.1", "10.0.0.254", SessionState.ESTABLISHED, SessionState.IDLE
        )
        write_updates_dump(path, [(2000, message), (2005, change)])
        records = read_dump(path)
        assert [r.timestamp for r in records] == [2000, 2005]
        assert isinstance(records[0].body, BGP4MPMessage)
        assert isinstance(records[1].body, BGP4MPStateChange)

    def test_rejects_unknown_body_type(self, tmp_path):
        with pytest.raises(TypeError):
            write_updates_dump(str(tmp_path / "bad.mrt"), [(0, object())])

    def test_empty_dump(self, tmp_path):
        path = str(tmp_path / "empty.mrt")
        assert write_updates_dump(path, []) == 0
        assert read_dump(path) == []


class TestCorruptionHandling:
    def test_missing_file_raises_parse_error(self, tmp_path):
        with pytest.raises(MRTParseError):
            read_dump(str(tmp_path / "nope.mrt"))

    def test_truncated_file_yields_invalid_tail_record(self, tmp_path, sample_prefix):
        path = str(tmp_path / "updates.mrt")
        message = BGP4MPMessage(
            64500, 65000, "10.0.0.1", "10.0.0.2",
            BGPUpdate(announced=[sample_prefix], attributes=_attrs([64500, 15169])),
        )
        write_updates_dump(path, [(2000, message), (2005, message)])
        full = read_dump(path)
        assert len(full) == 2 and all(r.is_valid for r in full)

        # Truncate inside the second record: first record still parses,
        # the tail is signalled as a single invalid record.
        size = os.path.getsize(path)
        corrupt_file(path, truncate_at=size - 10)
        records = read_dump(path)
        assert records[0].is_valid
        assert not records[-1].is_valid

    def test_garbage_file_yields_invalid_record(self, tmp_path):
        path = str(tmp_path / "garbage.mrt")
        with open(path, "wb") as handle:
            handle.write(b"\x00\x01\x02")
        records = read_dump(path)
        assert len(records) == 1
        assert not records[0].is_valid

    def test_reader_context_manager(self, tmp_path):
        path = str(tmp_path / "rib.mrt")
        _make_rib(path)
        with MRTDumpReader(path) as reader:
            assert sum(1 for _ in reader) == 3


class TestPropertyRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(1_000_000, 2_000_000),
                st.integers(8, 32),
                st.integers(0, 2**32 - 1),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_updates_dump_round_trips_any_sequence(self, tmp_path_factory, raw):
        import ipaddress

        path = str(tmp_path_factory.mktemp("mrt") / "updates.mrt")
        messages = []
        for timestamp, length, addr in sorted(raw):
            prefix = Prefix.from_address(str(ipaddress.IPv4Address(addr)), length)
            messages.append(
                (
                    timestamp,
                    BGP4MPMessage(
                        64500,
                        65000,
                        "10.0.0.1",
                        "10.0.0.2",
                        BGPUpdate(announced=[prefix], attributes=_attrs([64500, 3356])),
                    ),
                )
            )
        write_updates_dump(path, messages)
        records = read_dump(path)
        assert len(records) == len(messages)
        assert [r.timestamp for r in records] == [t for t, _ in messages]
        assert all(r.is_valid for r in records)
