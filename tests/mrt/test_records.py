"""Tests for MRT record structures and body codecs."""

from __future__ import annotations

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.fsm import SessionState
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.mrt.constants import BGP4MPSubtype, MRTType, TableDumpV2Subtype
from repro.mrt.records import (
    BGP4MPMessage,
    BGP4MPStateChange,
    CorruptRecord,
    MRTHeader,
    MRTRecord,
    PeerEntry,
    PeerIndexTable,
    RIBEntry,
    RIBPrefixRecord,
    decode_record_body,
)


class TestMRTHeader:
    def test_round_trip(self):
        header = MRTHeader(1_438_415_400, MRTType.BGP4MP, BGP4MPSubtype.MESSAGE_AS4)
        wire = header.encode(100)
        decoded, length, offset = MRTHeader.decode(wire)
        assert decoded == header
        assert length == 100
        assert offset == 12

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError):
            MRTHeader.decode(b"\x00" * 5)


class TestPeerIndexTable:
    def test_round_trip_mixed_families(self):
        table = PeerIndexTable(
            "198.51.100.1",
            "route-views2",
            [
                PeerEntry("10.0.0.1", "10.0.0.1", 64500),
                PeerEntry("10.0.0.2", "2001:db8::2", 64501),
            ],
        )
        decoded = PeerIndexTable.decode_body(table.encode_body())
        assert decoded.collector_bgp_id == "198.51.100.1"
        assert decoded.view_name == "route-views2"
        assert decoded.peers == table.peers
        assert decoded.peers[1].version == 6

    def test_empty_peer_list(self):
        table = PeerIndexTable("198.51.100.1", "rrc00", [])
        assert PeerIndexTable.decode_body(table.encode_body()).peers == []


class TestRIBPrefixRecord:
    def _attrs(self):
        return PathAttributes(as_path=ASPath.from_asns([64500, 3356]), next_hop="10.0.0.1")

    def test_round_trip_ipv4(self):
        record = RIBPrefixRecord(
            7,
            Prefix.from_string("192.0.2.0/24"),
            [RIBEntry(0, 1000, self._attrs()), RIBEntry(3, 1001, self._attrs())],
        )
        decoded = RIBPrefixRecord.decode_body(record.encode_body(), version=4)
        assert decoded.sequence == 7
        assert decoded.prefix == record.prefix
        assert [e.peer_index for e in decoded.entries] == [0, 3]
        assert decoded.entries[0].attributes.as_path == self._attrs().as_path
        assert record.subtype == TableDumpV2Subtype.RIB_IPV4_UNICAST

    def test_round_trip_ipv6(self):
        record = RIBPrefixRecord(
            1, Prefix.from_string("2001:db8::/32"), [RIBEntry(0, 10, self._attrs())]
        )
        decoded = RIBPrefixRecord.decode_body(record.encode_body(), version=6)
        assert decoded.prefix == record.prefix
        assert record.subtype == TableDumpV2Subtype.RIB_IPV6_UNICAST


class TestBGP4MPBodies:
    def test_message_round_trip(self, sample_attributes, sample_prefix):
        message = BGP4MPMessage(
            64500,
            65000,
            "10.0.0.1",
            "10.0.0.254",
            BGPUpdate(announced=[sample_prefix], attributes=sample_attributes),
        )
        decoded = BGP4MPMessage.decode_body(message.encode_body())
        assert decoded.peer_asn == 64500
        assert decoded.local_asn == 65000
        assert decoded.peer_address == "10.0.0.1"
        assert decoded.update.announced == [sample_prefix]

    def test_message_ipv6_peer(self, sample_attributes, sample_prefix):
        message = BGP4MPMessage(
            64500,
            65000,
            "2001:db8::1",
            "2001:db8::ff",
            BGPUpdate(announced=[sample_prefix], attributes=sample_attributes),
        )
        decoded = BGP4MPMessage.decode_body(message.encode_body())
        assert decoded.peer_address == "2001:db8::1"

    def test_state_change_round_trip(self):
        change = BGP4MPStateChange(
            64500, 65000, "10.0.0.1", "10.0.0.254", SessionState.ACTIVE, SessionState.ESTABLISHED
        )
        decoded = BGP4MPStateChange.decode_body(change.encode_body())
        assert decoded.old_state == SessionState.ACTIVE
        assert decoded.new_state == SessionState.ESTABLISHED


class TestRecordLevel:
    def test_constructors_set_types(self, sample_attributes, sample_prefix):
        rib = MRTRecord.rib_prefix(
            500, RIBPrefixRecord(0, sample_prefix, [RIBEntry(0, 400, sample_attributes)])
        )
        assert rib.header.mrt_type == MRTType.TABLE_DUMP_V2
        assert rib.timestamp == 500
        assert rib.is_valid

        msg = MRTRecord.bgp4mp_message(
            600,
            BGP4MPMessage(1, 2, "10.0.0.1", "10.0.0.2", BGPUpdate(withdrawn=[sample_prefix])),
        )
        assert msg.header.subtype == BGP4MPSubtype.MESSAGE_AS4

    def test_decode_record_body_flags_garbage_as_corrupt(self):
        header = MRTHeader(0, MRTType.BGP4MP, BGP4MPSubtype.MESSAGE_AS4)
        body = decode_record_body(header, BGP4MPSubtype.MESSAGE_AS4, b"\x00\x01\x02")
        assert isinstance(body, CorruptRecord)

    def test_decode_record_body_unknown_subtype(self):
        header = MRTHeader(0, MRTType.TABLE_DUMP_V2, 99)
        body = decode_record_body(header, 99, b"")
        assert isinstance(body, CorruptRecord)

    def test_corrupt_record_is_invalid(self):
        record = MRTRecord(MRTHeader(0, MRTType.BGP4MP, 4), CorruptRecord("boom"))
        assert not record.is_valid
