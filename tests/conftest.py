"""Shared test fixtures.

The ``corsaro_scenario`` / ``corsaro_archive`` pair lives here (rather than
in ``tests/corsaro``) because the BGPCorsaro, monitoring and benchmark tests
all consume the same generated archive; keeping one session-scoped copy
avoids regenerating it per package.
"""

from __future__ import annotations

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.collectors.archive import Archive
from repro.collectors.events import OutageEvent, PrefixHijackEvent, SessionResetEvent
from repro.collectors.scenario import Scenario, ScenarioConfig, build_scenario
from repro.collectors.topology import ASRole, TopologyConfig, generate_topology
from repro.utils.intervals import TimeInterval


@pytest.fixture(scope="session")
def corsaro_scenario() -> Scenario:
    """Two collectors, a prefix hijack, a country outage and a session reset."""
    config = ScenarioConfig(
        duration=3 * 3600,
        topology=TopologyConfig(num_tier1=4, num_transit=10, num_stub=30, seed=31),
        vps_per_collector=4,
        full_feed_fraction=1.0,
        churn_updates_per_vp_per_hour=40,
        seed=32,
    )
    topology = generate_topology(config.topology)
    start = config.start
    victim = next(a for a in topology.asns() if topology.node(a).role == ASRole.STUB)
    hijacker = next(
        a
        for a in topology.asns()
        if topology.node(a).role == ASRole.TRANSIT and a not in topology.providers(victim)
    )
    country = topology.node(victim).country
    events = [
        PrefixHijackEvent(
            interval=TimeInterval(start + 3600, start + 3600 + 1800),
            hijacker_asn=hijacker,
            victim_asn=victim,
            prefixes=tuple(topology.node(victim).prefixes[:2]),
        ),
        OutageEvent(interval=TimeInterval(start + 7200, start + 9000), country=country),
    ]
    scenario = build_scenario(config, events=events, topology=topology)
    rrc0 = scenario.collector("rrc0")
    scenario.timeline.add(
        SessionResetEvent(
            interval=TimeInterval(start + 5400, start + 6060),
            collector="rrc0",
            vp_asn=rrc0.vps[0].asn,
        )
    )
    return scenario


@pytest.fixture(scope="session")
def corsaro_archive(tmp_path_factory, corsaro_scenario) -> Archive:
    archive = Archive(str(tmp_path_factory.mktemp("corsaro-archive")))
    corsaro_scenario.generate(archive)
    return archive


@pytest.fixture
def sample_attributes() -> PathAttributes:
    """A realistic attribute set for an IPv4 route."""
    return PathAttributes(
        as_path=ASPath.from_asns([64500, 3356, 15169]),
        next_hop="10.0.0.1",
        communities=CommunitySet([Community(3356, 100), Community(3356, 666)]),
    )


@pytest.fixture
def sample_prefix() -> Prefix:
    return Prefix.from_string("192.0.2.0/24")
