"""Tests for the Atlas simulation: probes, traceroutes, and the RTBH experiment."""

from __future__ import annotations

import pytest

from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.collectors.events import RTBHEvent
from repro.collectors.topology import ASRole, TopologyConfig, generate_topology
from repro.atlas.probes import ProbeSelector
from repro.atlas.rtbh import RTBHExperiment, RTBHRequest
from repro.atlas.traceroute import TracerouteEngine
from repro.utils.intervals import TimeInterval


@pytest.fixture(scope="module")
def atlas_topology():
    return generate_topology(TopologyConfig(num_tier1=4, num_transit=12, num_stub=40, seed=77))


@pytest.fixture(scope="module")
def atlas_setup(atlas_topology):
    """A customer AS with a black-holing-capable provider, plus the RTBH event."""
    topology = atlas_topology
    customer = next(
        asn
        for asn in topology.asns()
        if topology.node(asn).role == ASRole.STUB
        and any(
            topology.node(p).blackhole_community_value is not None
            for p in topology.providers(asn)
        )
    )
    provider = next(
        p
        for p in topology.providers(customer)
        if topology.node(p).blackhole_community_value is not None
    )
    target = Prefix.from_address(str(topology.node(customer).prefixes[0].address), 32)
    event = RTBHEvent(
        interval=TimeInterval(1000, 2000),
        customer_asn=customer,
        blackhole_prefix=target,
        provider_asns=(provider,),
        communities=(Community(provider if provider <= 0xFFFF else 65535, 666),),
        propagating_providers=(provider,),
    )
    return topology, customer, provider, target, event


class TestProbeSelector:
    def test_population_covers_every_as(self, atlas_topology):
        selector = ProbeSelector(atlas_topology, probes_per_as=2, seed=1)
        assert len(selector.probes) == 2 * len(atlas_topology)
        assert len({p.probe_id for p in selector.probes}) == len(selector.probes)

    def test_selection_prefers_neighbourhood_and_respects_bounds(self, atlas_topology):
        selector = ProbeSelector(atlas_topology, probes_per_as=2, seed=1)
        origin = atlas_topology.asns()[10]
        selected = selector.select_for_target(origin, min_probes=50, max_probes=100)
        assert 50 <= len(selected) <= 100
        assert all(p.asn != origin for p in selected)
        neighbours = set(atlas_topology.neighbors(origin))
        assert any(p.asn in neighbours for p in selected)

    def test_unknown_origin_returns_nothing(self, atlas_topology):
        selector = ProbeSelector(atlas_topology, seed=1)
        assert selector.select_for_target(999999) == []

    def test_availability_model_drops_some_probes(self, atlas_topology):
        selector = ProbeSelector(atlas_topology, availability=0.5, seed=2)
        probes = selector.probes[:100]
        active = selector.currently_active(probes)
        assert 0 < len(active) < len(probes)


class TestTracerouteEngine:
    def test_traceroute_follows_policy_path(self, atlas_topology):
        engine = TracerouteEngine(atlas_topology)
        computer = engine.computer
        origin = atlas_topology.asns()[0]
        prefix = atlas_topology.node(origin).prefixes[0]
        probe = atlas_topology.asns()[-1]
        result = engine.traceroute(probe, prefix)
        assert result.reached_destination and result.reached_origin_as
        assert result.as_path[0] == probe and result.as_path[-1] == origin
        assert result.as_path == computer.paths_to_origin(origin)[probe].asns

    def test_unreachable_when_origin_excluded(self, atlas_topology):
        engine = TracerouteEngine(atlas_topology)
        origin = atlas_topology.asns()[0]
        prefix = atlas_topology.node(origin).prefixes[0]
        probe = atlas_topology.asns()[-1]
        result = engine.traceroute(probe, prefix, excluded_asns=[origin])
        assert not result.reached_destination

    def test_covering_prefix_lookup_for_host_routes(self, atlas_setup):
        topology, customer, _provider, target, _event = atlas_setup
        engine = TracerouteEngine(topology)
        probe = next(a for a in topology.asns() if a != customer)
        result = engine.traceroute(probe, target)
        assert result.origin_asn == customer

    def test_blackholing_drops_traffic_at_provider(self, atlas_setup):
        topology, customer, provider, target, event = atlas_setup
        engine = TracerouteEngine(topology)
        # A probe whose policy path to the customer crosses the black-holing
        # provider must be dropped there.
        computer = engine.computer
        paths = computer.paths_to_origin(customer)
        crossing = next(
            asn
            for asn, path in paths.items()
            if provider in path.asns and asn not in (customer, provider)
        )
        result = engine.traceroute(crossing, target, active_rtbh=[event])
        assert not result.reached_destination
        assert result.dropped_at == provider
        # Without the event the same probe reaches the destination.
        clean = engine.traceroute(crossing, target)
        assert clean.reached_destination

    def test_customer_side_paths_can_still_reach(self, atlas_setup):
        """Partial reachability during RTBH (the 13% band in Figure 4a)."""
        topology, customer, provider, target, event = atlas_setup
        engine = TracerouteEngine(topology)
        paths = engine.computer.paths_to_origin(customer)
        avoiding = [
            asn
            for asn, path in paths.items()
            if provider not in path.asns and asn != customer
        ]
        if not avoiding:
            pytest.skip("topology has no path avoiding the black-holing provider")
        result = engine.traceroute(avoiding[0], target, active_rtbh=[event])
        assert result.reached_destination


class TestRTBHExperiment:
    def test_measurement_shows_reachability_drop(self, atlas_setup):
        topology, customer, provider, target, event = atlas_setup
        experiment = RTBHExperiment(topology, seed=5)
        request = RTBHRequest(
            prefix=target,
            origin_asn=customer,
            communities=event.communities,
            start=1000,
            end=2000,
        )
        measurement = experiment.measure_request(request, event)
        assert measurement is not None
        assert measurement.probes_used >= 25
        assert measurement.after_destination_fraction > measurement.during_destination_fraction
        assert measurement.after_origin_fraction >= measurement.during_origin_fraction
        assert measurement.after_destination_fraction > 0.9
        assert measurement.reachability_dropped

    def test_run_skips_requests_without_events(self, atlas_setup):
        topology, customer, _provider, target, event = atlas_setup
        experiment = RTBHExperiment(topology, seed=5)
        request = RTBHRequest(target, customer, event.communities, 1000, 2000)
        other = RTBHRequest(Prefix.from_string("192.0.2.1/32"), customer, (), 0, 1)
        measurements = experiment.run([request, other], {target: event})
        assert len(measurements) == 1
