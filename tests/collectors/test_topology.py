"""Tests for the synthetic AS topology generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.prefix import Prefix
from repro.collectors.topology import (
    ASNode,
    ASRelationship,
    ASRole,
    ASTopology,
    TopologyConfig,
    generate_topology,
)


class TestASTopologyContainer:
    def test_add_and_query(self):
        topology = ASTopology()
        topology.add_as(ASNode(asn=1, role=ASRole.TIER1, country="US"))
        topology.add_as(ASNode(asn=2, role=ASRole.STUB, country="DE"))
        topology.add_link(2, 1, ASRelationship.CUSTOMER_TO_PROVIDER)
        assert 1 in topology and 2 in topology
        assert topology.providers(2) == [1]
        assert topology.customers(1) == [2]
        assert topology.peers(1) == []
        assert topology.relationship(1, 2) == ASRelationship.PROVIDER_TO_CUSTOMER

    def test_duplicate_as_rejected(self):
        topology = ASTopology()
        topology.add_as(ASNode(asn=1, role=ASRole.STUB, country="US"))
        with pytest.raises(ValueError):
            topology.add_as(ASNode(asn=1, role=ASRole.STUB, country="US"))

    def test_self_link_rejected(self):
        topology = ASTopology()
        topology.add_as(ASNode(asn=1, role=ASRole.STUB, country="US"))
        with pytest.raises(ValueError):
            topology.add_link(1, 1, ASRelationship.PEER_TO_PEER)

    def test_link_requires_existing_nodes(self):
        topology = ASTopology()
        topology.add_as(ASNode(asn=1, role=ASRole.STUB, country="US"))
        with pytest.raises(KeyError):
            topology.add_link(1, 99, ASRelationship.PEER_TO_PEER)

    def test_origin_lookup(self):
        topology = ASTopology()
        node = ASNode(asn=1, role=ASRole.STUB, country="US")
        node.prefixes.append(Prefix.from_string("10.0.0.0/24"))
        topology.add_as(node)
        topology.invalidate_caches()
        assert topology.origin_of(Prefix.from_string("10.0.0.0/24")) == 1
        assert topology.origin_of(Prefix.from_string("10.9.0.0/24")) is None


class TestGeneratedTopology:
    def test_deterministic_given_seed(self):
        a = generate_topology(TopologyConfig(num_tier1=3, num_transit=8, num_stub=20, seed=3))
        b = generate_topology(TopologyConfig(num_tier1=3, num_transit=8, num_stub=20, seed=3))
        assert a.asns() == b.asns()
        assert a.all_prefixes() == b.all_prefixes()
        for asn in a.asns():
            assert a.node(asn).country == b.node(asn).country

    def test_expected_counts(self, small_topology):
        roles = [small_topology.node(a).role for a in small_topology.asns()]
        assert roles.count(ASRole.TIER1) == 4
        assert roles.count(ASRole.TRANSIT) == 10
        assert roles.count(ASRole.STUB) == 30

    def test_tier1_full_mesh(self, small_topology):
        tier1 = [a for a in small_topology.asns() if small_topology.node(a).role == ASRole.TIER1]
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                assert small_topology.relationship(a, b) == ASRelationship.PEER_TO_PEER

    def test_every_non_tier1_has_a_provider(self, small_topology):
        for asn in small_topology.asns():
            if small_topology.node(asn).role != ASRole.TIER1:
                assert small_topology.providers(asn), f"AS{asn} has no provider"

    def test_every_as_originates_a_prefix(self, small_topology):
        for asn in small_topology.asns():
            assert small_topology.node(asn).prefixes

    def test_prefixes_unique_across_ases(self, small_topology):
        prefixes = small_topology.all_prefixes()
        assert len(prefixes) == len(set(prefixes))

    def test_prefixes_do_not_overlap(self, small_topology):
        prefixes = sorted(small_topology.all_prefixes(version=4))
        for left, right in zip(prefixes, prefixes[1:]):
            assert not left.overlaps(right), f"{left} overlaps {right}"

    def test_some_ipv6_present(self, small_topology):
        assert small_topology.all_prefixes(version=6)

    def test_country_queries_consistent(self, small_topology):
        for country in small_topology.countries():
            asns = small_topology.asns_by_country(country)
            assert asns
            prefixes = small_topology.prefixes_by_country(country)
            expected = []
            for asn in asns:
                expected.extend(small_topology.node(asn).all_prefixes)
            assert sorted(expected) == prefixes

    def test_some_transit_ases_support_blackholing(self, small_topology):
        supporters = [
            a
            for a in small_topology.asns()
            if small_topology.node(a).blackhole_community_value is not None
        ]
        assert supporters

    def test_some_ases_strip_communities(self, small_topology):
        strippers = [
            a for a in small_topology.asns() if small_topology.node(a).strips_communities
        ]
        assert strippers

    def test_graph_is_connected(self, small_topology):
        import networkx as nx

        assert nx.is_connected(small_topology.graph)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_generation_invariants_hold_for_any_seed(self, seed):
        config = TopologyConfig(num_tier1=3, num_transit=6, num_stub=15, seed=seed)
        topology = generate_topology(config)
        assert len(topology) == 24
        prefixes = topology.all_prefixes()
        assert len(prefixes) == len(set(prefixes))
        for asn in topology.asns():
            if topology.node(asn).role != ASRole.TIER1:
                assert topology.providers(asn)
