"""Tests for collectors, vantage points and end-to-end scenario generation."""

from __future__ import annotations

import pytest

from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.collectors.archive import Archive
from repro.collectors.collector import Collector
from repro.collectors.events import (
    OutageEvent,
    PrefixHijackEvent,
    RTBHEvent,
    SessionResetEvent,
)
from repro.collectors.projects import RIPE_RIS, ROUTEVIEWS, project_for_collector
from repro.collectors.routing import RouteType
from repro.collectors.scenario import ScenarioConfig, build_scenario
from repro.collectors.topology import ASRole
from repro.collectors.vantage_point import VantagePoint
from repro.mrt import read_dump
from repro.mrt.records import BGP4MPMessage, BGP4MPStateChange, PeerIndexTable, RIBPrefixRecord
from repro.utils.intervals import TimeInterval


class TestProjects:
    def test_periodicities_match_paper(self):
        assert ROUTEVIEWS.rib_period == 2 * 3600
        assert ROUTEVIEWS.updates_period == 15 * 60
        assert RIPE_RIS.rib_period == 8 * 3600
        assert RIPE_RIS.updates_period == 5 * 60

    def test_state_message_behaviour(self):
        assert RIPE_RIS.dumps_state_messages
        assert not ROUTEVIEWS.dumps_state_messages

    def test_collector_naming(self):
        assert ROUTEVIEWS.collector_name(2) == "route-views2"
        assert RIPE_RIS.collector_name(0) == "rrc0"
        assert project_for_collector("rrc12") is RIPE_RIS
        assert project_for_collector("route-views4") is ROUTEVIEWS
        with pytest.raises(KeyError):
            project_for_collector("mystery")


class TestVantagePoint:
    def test_full_feed_exports_everything(self, small_topology, small_computer):
        asn = small_topology.asns()[0]
        vp = VantagePoint(asn=asn, address="10.0.0.1", full_feed=True)
        table = vp.adj_rib_out(small_computer)
        assert set(table) == set(small_topology.all_prefixes())

    def test_partial_feed_is_a_strict_subset(self, small_topology, small_computer):
        # Pick a transit AS so it actually has customer routes.
        asn = next(
            a for a in small_topology.asns() if small_topology.node(a).role == ASRole.TRANSIT
        )
        full = VantagePoint(asn=asn, address="10.0.0.1", full_feed=True).adj_rib_out(small_computer)
        partial = VantagePoint(asn=asn, address="10.0.0.1", full_feed=False).adj_rib_out(
            small_computer
        )
        assert set(partial) < set(full)
        assert all(
            route.route_type in (RouteType.ORIGIN, RouteType.CUSTOMER)
            for route in partial.values()
        )

    def test_version_detection(self):
        assert VantagePoint(1, "10.0.0.1").version == 4
        assert VantagePoint(1, "2001:db8::1").version == 6


class TestCollector:
    def test_duplicate_vp_addresses_rejected(self):
        with pytest.raises(ValueError):
            Collector(
                "rrc0",
                RIPE_RIS,
                [VantagePoint(1, "10.0.0.1"), VantagePoint(2, "10.0.0.1")],
            )

    def test_peer_entries_align_with_vps(self, small_topology):
        vps = [VantagePoint(100, "10.0.0.1"), VantagePoint(101, "10.0.0.2")]
        collector = Collector("rrc0", RIPE_RIS, vps)
        entries = collector.peer_entries()
        assert [e.asn for e in entries] == [100, 101]
        assert collector.peer_index(vps[1]) == 1
        assert collector.vp_by_asn(101) is vps[1]
        assert collector.vp_by_asn(999) is None


class TestScenarioGeneration:
    @pytest.fixture(scope="class")
    def generated(self, tmp_path_factory, small_topology):
        """A small scenario with one of each event type, generated once."""
        config = ScenarioConfig(
            duration=2 * 3600,
            topology=None,  # unused: we pass the prebuilt topology
            vps_per_collector=4,
            churn_updates_per_vp_per_hour=30,
            seed=3,
        )
        config.topology = None
        start = config.start
        stub = next(
            a for a in small_topology.asns() if small_topology.node(a).role == ASRole.STUB
        )
        victim_prefix = small_topology.node(stub).prefixes[0]
        hijacker = next(a for a in small_topology.asns() if a != stub)
        provider = small_topology.providers(stub)[0]
        country = small_topology.node(stub).country
        events = [
            PrefixHijackEvent(
                interval=TimeInterval(start + 1800, start + 3600),
                hijacker_asn=hijacker,
                victim_asn=stub,
                prefixes=(victim_prefix,),
            ),
            OutageEvent(interval=TimeInterval(start + 4000, start + 5000), country=country),
            RTBHEvent(
                interval=TimeInterval(start + 600, start + 1200),
                customer_asn=stub,
                blackhole_prefix=Prefix.from_address(str(victim_prefix.address), 32),
                provider_asns=(provider,),
                communities=(Community(provider if provider <= 0xFFFF else 65535, 666),),
                propagating_providers=(provider,),
            ),
            SessionResetEvent(
                interval=TimeInterval(start + 5400, start + 5460), collector="rrc0", vp_asn=0
            ),
        ]
        scenario = build_scenario(config, events=events, topology=small_topology)
        # Patch the session-reset event to target a real VP of rrc0.
        rrc0 = scenario.collector("rrc0")
        reset = next(e for e in scenario.timeline.events if isinstance(e, SessionResetEvent))
        scenario.timeline.events.remove(reset)
        scenario.timeline.add(
            SessionResetEvent(
                interval=reset.interval, collector="rrc0", vp_asn=rrc0.vps[0].asn
            )
        )
        archive = Archive(str(tmp_path_factory.mktemp("archive")))
        files = scenario.generate(archive)
        return scenario, archive, files

    def test_dump_counts_follow_project_periodicities(self, generated):
        scenario, _, files = generated
        ris_updates = [f for f in files if f.project == "ris" and f.dump_type == "updates"]
        rv_updates = [f for f in files if f.project == "routeviews" and f.dump_type == "updates"]
        assert len(ris_updates) == scenario.config.duration // RIPE_RIS.updates_period
        assert len(rv_updates) == scenario.config.duration // ROUTEVIEWS.updates_period
        assert [f for f in files if f.dump_type == "ribs"]

    def test_all_dumps_parse_and_are_valid(self, generated):
        _, _, files = generated
        for dump in files:
            records = read_dump(dump.path)
            assert all(record.is_valid for record in records)

    def test_rib_dump_structure(self, generated):
        scenario, _, files = generated
        rib = next(f for f in files if f.dump_type == "ribs" and f.project == "ris")
        records = read_dump(rib.path)
        assert isinstance(records[0].body, PeerIndexTable)
        assert all(isinstance(r.body, RIBPrefixRecord) for r in records[1:])
        # Record timestamps are spread across the RIB walk (E2 in the paper).
        timestamps = [r.timestamp for r in records]
        assert max(timestamps) > min(timestamps)
        # Peer indexes reference the collector's VPs.
        collector = scenario.collector(rib.collector)
        peer_count = len(collector.vps)
        for record in records[1:]:
            for entry in record.body.entries:
                assert 0 <= entry.peer_index < peer_count

    def test_updates_dumps_timestamps_within_window(self, generated):
        _, _, files = generated
        for dump in files:
            if dump.dump_type != "updates":
                continue
            for record in read_dump(dump.path):
                assert dump.timestamp <= record.timestamp <= dump.interval_end

    def test_hijack_produces_moas_updates(self, generated):
        scenario, _, files = generated
        hijack = next(
            e for e in scenario.timeline.events if isinstance(e, PrefixHijackEvent)
        )
        target = hijack.prefixes[0]
        origins = set()
        for dump in files:
            if dump.dump_type != "updates":
                continue
            for record in read_dump(dump.path):
                if isinstance(record.body, BGP4MPMessage):
                    update = record.body.update
                    if target in update.all_announced:
                        origins.add(update.attributes.as_path.origin_asn)
        assert hijack.hijacker_asn in origins

    def test_outage_produces_withdrawals(self, generated):
        scenario, _, files = generated
        outage = next(e for e in scenario.timeline.events if isinstance(e, OutageEvent))
        outage_prefixes = set(outage.prefixes)
        withdrawn = set()
        for dump in files:
            if dump.dump_type != "updates":
                continue
            for record in read_dump(dump.path):
                if isinstance(record.body, BGP4MPMessage):
                    withdrawn.update(record.body.update.all_withdrawn)
        assert withdrawn & outage_prefixes

    def test_session_reset_state_messages_only_for_ris(self, generated):
        scenario, _, files = generated
        state_projects = set()
        for dump in files:
            if dump.dump_type != "updates":
                continue
            for record in read_dump(dump.path):
                if isinstance(record.body, BGP4MPStateChange):
                    state_projects.add(dump.project)
        assert state_projects == {"ris"}

    def test_rtbh_announcement_carries_blackhole_community(self, generated):
        scenario, _, files = generated
        rtbh = next(e for e in scenario.timeline.events if isinstance(e, RTBHEvent))
        seen_tagged = False
        for dump in files:
            if dump.dump_type != "updates":
                continue
            for record in read_dump(dump.path):
                if isinstance(record.body, BGP4MPMessage):
                    update = record.body.update
                    if rtbh.blackhole_prefix in update.all_announced:
                        if update.attributes.communities.matches_any(rtbh.communities):
                            seen_tagged = True
        assert seen_tagged

    def test_generation_is_deterministic(self, small_topology, tmp_path):
        config = ScenarioConfig(duration=1800, vps_per_collector=3, seed=5)
        first = build_scenario(config, topology=small_topology)
        second = build_scenario(config, topology=small_topology)
        updates_a = first.updates_for_collector(first.collectors[0])
        updates_b = second.updates_for_collector(second.collectors[0])
        assert [(t, vp.asn, kind) for t, vp, kind, _ in updates_a] == [
            (t, vp.asn, kind) for t, vp, kind, _ in updates_b
        ]
