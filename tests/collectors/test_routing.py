"""Tests for Gao–Rexford policy routing."""

from __future__ import annotations

import pytest

from repro.bgp.prefix import Prefix
from repro.collectors.routing import RouteComputer, RouteType
from repro.collectors.topology import (
    ASNode,
    ASRelationship,
    ASRole,
    ASTopology,
)


def _tiny_topology() -> ASTopology:
    """A five-AS topology with a known policy-routing outcome.

        T1 --- T2      (peers)
        |       |
        C1      C2     (customers of T1 / T2)
        |
        S              (customer of C1)
    """
    topology = ASTopology()
    roles = [
        (10, ASRole.TIER1),
        (20, ASRole.TIER1),
        (30, ASRole.TRANSIT),
        (40, ASRole.TRANSIT),
        (50, ASRole.STUB),
    ]
    for asn, role in roles:
        topology.add_as(ASNode(asn=asn, role=role, country="US"))
    topology.add_link(10, 20, ASRelationship.PEER_TO_PEER)
    topology.add_link(30, 10, ASRelationship.CUSTOMER_TO_PROVIDER)
    topology.add_link(40, 20, ASRelationship.CUSTOMER_TO_PROVIDER)
    topology.add_link(50, 30, ASRelationship.CUSTOMER_TO_PROVIDER)
    topology.node(50).prefixes.append(Prefix.from_string("10.50.0.0/24"))
    topology.node(40).prefixes.append(Prefix.from_string("10.40.0.0/24"))
    topology.invalidate_caches()
    return topology


class TestPolicyPaths:
    def test_paths_to_stub_origin(self):
        computer = RouteComputer(_tiny_topology())
        paths = computer.paths_to_origin(50)
        assert paths[50].route_type == RouteType.ORIGIN
        assert paths[30].asns == (30, 50)
        assert paths[30].route_type == RouteType.CUSTOMER
        assert paths[10].asns == (10, 30, 50)
        assert paths[10].route_type == RouteType.CUSTOMER
        # T2 learns via peering with T1 (one peer hop at the apex).
        assert paths[20].asns == (20, 10, 30, 50)
        assert paths[20].route_type == RouteType.PEER
        # C2 learns from its provider T2.
        assert paths[40].asns == (40, 20, 10, 30, 50)
        assert paths[40].route_type == RouteType.PROVIDER

    def test_valley_free_property(self, small_topology, small_computer):
        """No path goes down (provider->customer) and then up again."""
        for origin in small_topology.asns()[:20]:
            for asn, path in small_computer.paths_to_origin(origin).items():
                went_down = False
                hops = list(path.asns)
                for current, nxt in zip(hops, hops[1:]):
                    relationship = small_topology.relationship(current, nxt)
                    if relationship == ASRelationship.PROVIDER_TO_CUSTOMER:
                        went_down = True
                    elif went_down:
                        pytest.fail(f"valley in path {hops} for origin {origin}")

    def test_every_as_reaches_every_origin_in_connected_topology(
        self, small_topology, small_computer
    ):
        origin = small_topology.asns()[0]
        paths = small_computer.paths_to_origin(origin)
        assert set(paths) == set(small_topology.asns())

    def test_excluded_origin_unreachable(self):
        computer = RouteComputer(_tiny_topology())
        assert computer.paths_to_origin(50, excluded=[50]) == {}

    def test_excluded_transit_breaks_reachability(self):
        computer = RouteComputer(_tiny_topology())
        paths = computer.paths_to_origin(50, excluded=[30])
        # With C1 down, nobody but the origin itself can reach AS50.
        assert set(paths) == {50}

    def test_paths_are_cached(self):
        computer = RouteComputer(_tiny_topology())
        first = computer.paths_to_origin(50)
        assert computer.paths_to_origin(50) is first
        computer.invalidate()
        assert computer.paths_to_origin(50) is not first


class TestRoutes:
    def test_route_materialisation(self):
        topology = _tiny_topology()
        computer = RouteComputer(topology)
        prefix = Prefix.from_string("10.50.0.0/24")
        route = computer.route(40, prefix)
        assert route is not None
        assert route.prefix == prefix
        assert route.as_path.hops == [40, 20, 10, 30, 50]
        assert route.origin_asn == 50
        assert route.route_type == RouteType.PROVIDER
        assert route.next_hop.startswith("172.16.")

    def test_loc_rib_covers_all_reachable_prefixes(self):
        topology = _tiny_topology()
        computer = RouteComputer(topology)
        rib = computer.loc_rib(10)
        assert set(rib) == set(topology.all_prefixes())
        assert all(route.as_path.hops[0] == 10 for route in rib.values())

    def test_loc_rib_extra_origin_competes(self):
        topology = _tiny_topology()
        computer = RouteComputer(topology)
        prefix = Prefix.from_string("10.50.0.0/24")
        # AS40 hijacks AS50's prefix: AS20 (provider of 40) now has a
        # customer route to the hijacker vs a peer route to the victim,
        # so the hijacked route wins at AS20.
        rib = computer.loc_rib(20, extra_origins={prefix: 40})
        assert rib[prefix].origin_asn == 40
        # AS30, on the other hand, keeps its customer route to the victim.
        rib30 = computer.loc_rib(30, extra_origins={prefix: 40})
        assert rib30[prefix].origin_asn == 50

    def test_route_for_unknown_prefix_is_none(self):
        computer = RouteComputer(_tiny_topology())
        assert computer.route(10, Prefix.from_string("192.0.2.0/24")) is None

    def test_ipv6_next_hop_shape(self, small_topology, small_computer):
        prefixes_v6 = small_topology.all_prefixes(version=6)
        prefix = prefixes_v6[0]
        origin = small_topology.origin_of(prefix)
        observer = next(a for a in small_topology.asns() if a != origin)
        route = small_computer.route(observer, prefix)
        assert route is not None
        assert ":" in route.next_hop
        attrs = route.to_attributes()
        assert attrs.mp_next_hop == route.next_hop

    def test_communities_reflect_path_and_stripping(self, small_topology, small_computer):
        # At least one route in the system should carry communities; and no
        # route should carry a community whose AS identifier is not on the path.
        seen_any = False
        observer = small_topology.asns()[0]
        rib = small_computer.loc_rib(observer)
        for route in rib.values():
            identifiers = route.communities.asn_identifiers()
            if identifiers:
                seen_any = True
                path_asns = set(route.as_path.iter_asns())
                assert identifiers <= path_asns
        assert seen_any
