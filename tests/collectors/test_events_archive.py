"""Tests for the event timeline, archive layout and publication latency."""

from __future__ import annotations

import os


from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.collectors.archive import Archive, DumpFile, PublicationDelayModel
from repro.collectors.events import (
    EventTimeline,
    OutageEvent,
    PrefixFlapEvent,
    PrefixHijackEvent,
    RTBHEvent,
    SessionResetEvent,
)
from repro.utils.intervals import TimeInterval


PREFIX = Prefix.from_string("10.1.0.0/24")
OTHER = Prefix.from_string("10.2.0.0/24")


class TestEvents:
    def test_hijack_extra_origins(self):
        event = PrefixHijackEvent(
            interval=TimeInterval(100, 200), hijacker_asn=666, victim_asn=1, prefixes=(PREFIX,)
        )
        assert event.active_at(150)
        assert not event.active_at(201)
        assert event.extra_origins() == {PREFIX: 666}
        assert list(event.affected_prefixes()) == [PREFIX]

    def test_outage_exclusions(self):
        event = OutageEvent(interval=TimeInterval(0, 10), asns=(1, 2), prefixes=(PREFIX, OTHER))
        assert event.excluded_asns() == {1, 2}
        assert set(event.affected_prefixes()) == {PREFIX, OTHER}

    def test_flap_alternates(self):
        event = PrefixFlapEvent(
            interval=TimeInterval(0, 600), prefix=PREFIX, origin_asn=1, period=100
        )
        assert event.is_withdrawn_at(0)
        assert not event.is_withdrawn_at(100)
        assert event.is_withdrawn_at(250)
        assert not event.is_withdrawn_at(700)  # outside the interval
        boundaries = event.boundaries()
        assert boundaries[0] == 0 and boundaries[-1] == 600
        assert all(b - a == 100 for a, b in zip(boundaries, boundaries[1:]))

    def test_rtbh_event(self):
        event = RTBHEvent(
            interval=TimeInterval(0, 100),
            customer_asn=4,
            blackhole_prefix=Prefix.from_string("10.1.0.7/32"),
            provider_asns=(2, 3),
            communities=(Community(2, 666),),
            propagating_providers=(2,),
        )
        assert event.extra_origins() == {Prefix.from_string("10.1.0.7/32"): 4}


class TestEventTimeline:
    def _timeline(self):
        return EventTimeline(
            [
                PrefixHijackEvent(
                    interval=TimeInterval(100, 200),
                    hijacker_asn=9,
                    victim_asn=1,
                    prefixes=(PREFIX,),
                ),
                OutageEvent(interval=TimeInterval(150, 300), asns=(7,), prefixes=(OTHER,)),
                PrefixFlapEvent(
                    interval=TimeInterval(400, 500), prefix=OTHER, origin_asn=7, period=50
                ),
                SessionResetEvent(interval=TimeInterval(600, 660), collector="rrc0", vp_asn=5),
            ]
        )

    def test_active_and_boundaries(self):
        timeline = self._timeline()
        assert len(timeline) == 4
        assert {type(e).__name__ for e in timeline.active_at(160)} == {
            "PrefixHijackEvent",
            "OutageEvent",
        }
        boundaries = timeline.boundaries(0, 1000)
        assert 100 in boundaries and 200 in boundaries and 450 in boundaries
        assert boundaries == sorted(boundaries)

    def test_boundaries_clamped_to_window(self):
        timeline = self._timeline()
        assert timeline.boundaries(0, 120) == [100]

    def test_state_queries(self):
        timeline = self._timeline()
        assert timeline.excluded_asns_at(160) == {7}
        assert timeline.extra_origins_at(160) == {PREFIX: 9}
        assert timeline.extra_origins_at(50) == {}
        assert timeline.withdrawn_prefixes_at(410) == {OTHER}
        assert timeline.withdrawn_prefixes_at(460) == set()
        assert timeline.session_resets("rrc0")[0].vp_asn == 5
        assert timeline.session_resets("route-views0") == []
        assert timeline.affected_prefixes() == {PREFIX, OTHER}

    def test_add_keeps_order(self):
        timeline = self._timeline()
        timeline.add(OutageEvent(interval=TimeInterval(0, 10), asns=(1,), prefixes=()))
        assert timeline.events[0].interval.start == 0


class TestPublicationDelay:
    def test_p99_under_20_minutes(self):
        model = PublicationDelayModel(seed=5)
        delays = [model.sample(duration=15 * 60) for _ in range(2000)]
        start_to_available = [15 * 60 + d for d in delays]
        within = sum(1 for value in start_to_available if value <= 20 * 60)
        assert within / len(start_to_available) >= 0.97
        assert all(d > 0 for d in delays)

    def test_occasional_tail_beyond_p99(self):
        model = PublicationDelayModel(seed=6)
        delays = [model.sample(duration=15 * 60) for _ in range(3000)]
        assert any(15 * 60 + d > 20 * 60 for d in delays)


class TestArchive:
    def test_layout_matches_projects_convention(self, tmp_path):
        archive = Archive(str(tmp_path))
        path = archive.path_for("routeviews", "route-views2", "updates", 1_451_606_400)
        assert path.endswith(
            os.path.join(
                "routeviews", "route-views2", "updates", "2016.01", "updates.20160101.0000.mrt.gz"
            )
        )

    def test_publish_and_visibility(self, tmp_path):
        archive = Archive(str(tmp_path))
        file_path = str(tmp_path / "dump.mrt.gz")
        with open(file_path, "wb") as handle:
            handle.write(b"\x00")
        entry = archive.publish("ris", "rrc0", "updates", 1000, 300, file_path)
        assert entry.available_at > 1300
        assert archive.entries(visible_at=entry.available_at - 1) == []
        assert archive.entries(visible_at=entry.available_at) == [entry]
        assert archive.collectors() == ["rrc0"]
        assert archive.projects() == ["ris"]

    def test_index_persists_across_instances(self, tmp_path):
        archive = Archive(str(tmp_path))
        file_path = str(tmp_path / "dump.mrt.gz")
        open(file_path, "wb").close()
        archive.publish("ris", "rrc0", "ribs", 2000, 120, file_path, available_at=2500)
        reloaded = Archive(str(tmp_path))
        assert len(reloaded) == 1
        entry = list(reloaded)[0]
        assert entry.dump_type == "ribs"
        assert entry.available_at == 2500
        assert entry.interval_end == 2120

    def test_dump_file_json_round_trip(self):
        entry = DumpFile("ris", "rrc0", "updates", 1, 2, "/x", 3.5)
        assert DumpFile.from_json(entry.to_json()) == entry
