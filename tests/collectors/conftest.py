"""Fixtures shared by the collector-simulation tests.

The small topology and scenario here are session-scoped because they are
deterministic and moderately expensive to build.
"""

from __future__ import annotations

import pytest

from repro.collectors.routing import RouteComputer
from repro.collectors.scenario import Scenario, ScenarioConfig, build_scenario
from repro.collectors.topology import ASTopology, TopologyConfig, generate_topology


SMALL_TOPOLOGY_CONFIG = TopologyConfig(
    num_tier1=4, num_transit=10, num_stub=30, seed=7
)


@pytest.fixture(scope="session")
def small_topology() -> ASTopology:
    return generate_topology(SMALL_TOPOLOGY_CONFIG)


@pytest.fixture(scope="session")
def small_computer(small_topology) -> RouteComputer:
    return RouteComputer(small_topology)


@pytest.fixture(scope="session")
def small_scenario(small_topology) -> Scenario:
    config = ScenarioConfig(
        duration=2 * 3600,
        topology=SMALL_TOPOLOGY_CONFIG,
        vps_per_collector=4,
        churn_updates_per_vp_per_hour=20,
        seed=11,
    )
    return build_scenario(config, topology=small_topology)
