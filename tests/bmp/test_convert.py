"""Tests for the BMP → BGPStream record converter (paper §6)."""

from __future__ import annotations

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.fsm import SessionState
from repro.bgp.message import BGPOpen, BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bmp.convert import LIVE_PROJECT, BMPRecordConverter
from repro.bmp.messages import BMPMessage, BMPPeerHeader, BMPStat
from repro.core.record import RecordStatus
from repro.mrt.records import BGP4MPMessage, BGP4MPStateChange


def make_peer(address="10.1.2.3", asn=65001, timestamp=1000, **overrides):
    return BMPPeerHeader(
        address=address, asn=asn, bgp_id="192.0.2.1", timestamp_sec=timestamp, **overrides
    )


def update_announcing(*prefixes, withdrawn=()):
    return BGPUpdate(
        announced=[Prefix.from_string(p) for p in prefixes],
        withdrawn=[Prefix.from_string(p) for p in withdrawn],
        attributes=PathAttributes(
            as_path=ASPath.from_string("65001 65002"), next_hop="10.1.2.3"
        ),
    )


class TestRouteMonitoring:
    def test_becomes_an_updates_record(self):
        converter = BMPRecordConverter()
        peer = make_peer()
        (record,) = converter.convert(
            "rtr1", BMPMessage.route_monitoring(peer, update_announcing("203.0.113.0/24"))
        )
        assert record.status == RecordStatus.VALID
        assert record.project == LIVE_PROJECT
        assert record.collector == "rtr1"
        assert record.router == "rtr1"
        assert record.dump_type == "updates"
        assert record.time == 1000
        body = record.mrt.body
        assert isinstance(body, BGP4MPMessage)
        assert body.peer_asn == 65001
        assert body.peer_address == "10.1.2.3"
        (elem,) = list(record.elems())
        assert str(elem.prefix) == "203.0.113.0/24"
        assert str(elem.elem_type) == "A"

    def test_tracks_announced_state(self):
        converter = BMPRecordConverter()
        peer = make_peer()
        converter.convert(
            "rtr1",
            BMPMessage.route_monitoring(
                peer, update_announcing("203.0.113.0/24", "198.51.100.0/24")
            ),
        )
        converter.convert(
            "rtr1",
            BMPMessage.route_monitoring(
                peer, update_announcing(withdrawn=("198.51.100.0/24",))
            ),
        )
        assert converter.announced_prefixes("rtr1", peer) == {
            Prefix.from_string("203.0.113.0/24")
        }

    def test_state_is_per_router_and_peer(self):
        converter = BMPRecordConverter()
        peer_a = make_peer(address="10.0.0.1")
        peer_b = make_peer(address="10.0.0.2")
        converter.convert(
            "rtr1", BMPMessage.route_monitoring(peer_a, update_announcing("203.0.113.0/24"))
        )
        converter.convert(
            "rtr2", BMPMessage.route_monitoring(peer_b, update_announcing("198.51.100.0/24"))
        )
        assert converter.announced_prefixes("rtr1", peer_a) == {
            Prefix.from_string("203.0.113.0/24")
        }
        assert converter.announced_prefixes("rtr1", peer_b) == set()
        assert converter.announced_prefixes("rtr2", peer_b) == {
            Prefix.from_string("198.51.100.0/24")
        }


class TestPeerUpDown:
    def test_peer_up_emits_established_state_change_and_resets_rib(self):
        converter = BMPRecordConverter()
        peer = make_peer()
        converter.convert(
            "rtr1", BMPMessage.route_monitoring(peer, update_announcing("203.0.113.0/24"))
        )
        (record,) = converter.convert(
            "rtr1",
            BMPMessage.peer_up(
                make_peer(timestamp=1050),
                sent_open=BGPOpen(asn=65000),
                received_open=BGPOpen(asn=65001),
            ),
        )
        body = record.mrt.body
        assert isinstance(body, BGP4MPStateChange)
        assert body.new_state == SessionState.ESTABLISHED
        # the RIB-in snapshot that follows re-announces everything
        assert converter.announced_prefixes("rtr1", peer) == set()

    def test_peer_down_synthesises_withdrawals_then_state_change(self):
        converter = BMPRecordConverter()
        peer = make_peer()
        converter.convert(
            "rtr1",
            BMPMessage.route_monitoring(
                peer, update_announcing("203.0.113.0/24", "198.51.100.0/24")
            ),
        )
        records = converter.convert(
            "rtr1", BMPMessage.peer_down(make_peer(timestamp=1100), reason=4)
        )
        assert len(records) == 2
        withdrawal, state_change = records
        elems = list(withdrawal.elems())
        assert sorted(str(e.prefix) for e in elems) == ["198.51.100.0/24", "203.0.113.0/24"]
        assert {str(e.elem_type) for e in elems} == {"W"}
        body = state_change.mrt.body
        assert isinstance(body, BGP4MPStateChange)
        assert body.new_state == SessionState.IDLE
        assert converter.withdrawals_synthesised == 2
        # state is gone: a second peer down yields only the state change
        assert len(converter.convert("rtr1", BMPMessage.peer_down(peer, reason=4))) == 1

    def test_peer_down_withdraws_ipv6_via_mp_unreach(self):
        converter = BMPRecordConverter()
        peer = make_peer(address="2001:db8::1")
        update = BGPUpdate(
            attributes=PathAttributes(
                as_path=ASPath.from_string("65001"),
                mp_next_hop="2001:db8::1",
                mp_reach_nlri=[Prefix.from_string("2001:db8:1::/48")],
            )
        )
        converter.convert("rtr1", BMPMessage.route_monitoring(peer, update))
        withdrawal, _ = converter.convert("rtr1", BMPMessage.peer_down(peer, reason=4))
        (elem,) = list(withdrawal.elems())
        assert str(elem.elem_type) == "W"
        assert str(elem.prefix) == "2001:db8:1::/48"

    def test_stateless_mode_skips_synthesised_withdrawals(self):
        converter = BMPRecordConverter(track_state=False)
        peer = make_peer()
        converter.convert(
            "rtr1", BMPMessage.route_monitoring(peer, update_announcing("203.0.113.0/24"))
        )
        records = converter.convert("rtr1", BMPMessage.peer_down(peer, reason=4))
        assert len(records) == 1
        assert isinstance(records[0].mrt.body, BGP4MPStateChange)

    def test_stateless_mode_accumulates_no_per_peer_state(self):
        # Peer Up must not seed the announced-state dict when tracking is
        # off: a long-lived stateless tail would otherwise grow one entry
        # per session flap, and Termination would tear down sessions from
        # state the stateless mode claims not to keep.
        converter = BMPRecordConverter(track_state=False)
        for i in range(5):
            peer = make_peer(address=f"10.0.0.{i + 1}")
            converter.convert("rtr1", BMPMessage.peer_up(peer))
            converter.convert(
                "rtr1",
                BMPMessage.route_monitoring(peer, update_announcing("203.0.113.0/24")),
            )
        assert converter._announced == {}
        assert converter.convert("rtr1", BMPMessage.termination([])) == []


class TestTerminationAndOthers:
    def test_termination_tears_down_every_peer_of_the_router(self):
        converter = BMPRecordConverter()
        peer_a = make_peer(address="10.0.0.1")
        peer_b = make_peer(address="10.0.0.2", timestamp=1010)
        converter.convert(
            "rtr1", BMPMessage.route_monitoring(peer_a, update_announcing("203.0.113.0/24"))
        )
        converter.convert(
            "rtr1", BMPMessage.route_monitoring(peer_b, update_announcing("198.51.100.0/24"))
        )
        converter.convert(
            "rtr2", BMPMessage.route_monitoring(make_peer(), update_announcing("192.0.2.0/25"))
        )
        records = converter.convert("rtr1", BMPMessage.termination([]))
        # per peer: one withdrawal record + one state change
        assert len(records) == 4
        withdrawn = {
            str(e.prefix)
            for r in records
            for e in r.elems()
            if str(e.elem_type) == "W"
        }
        assert withdrawn == {"203.0.113.0/24", "198.51.100.0/24"}
        assert all(r.time == 1010 for r in records)  # last time seen on rtr1
        # rtr2's session is untouched
        assert converter.announced_prefixes("rtr2", make_peer()) == {
            Prefix.from_string("192.0.2.0/25")
        }

    def test_initiation_and_stats_produce_no_records(self):
        converter = BMPRecordConverter()
        assert converter.convert("rtr1", BMPMessage.initiation([])) == []
        assert (
            converter.convert(
                "rtr1", BMPMessage.stats_report(make_peer(timestamp=1234), [BMPStat(0, 7)])
            )
            == []
        )
        # ... but stats advance the router's last-seen time
        (record,) = converter.convert(
            "rtr1", BMPMessage.route_monitoring(make_peer(timestamp=0), update_announcing())
        )
        assert record.time == 1234

    def test_corrupt_message_becomes_not_valid_record(self):
        converter = BMPRecordConverter()
        converter.convert(
            "rtr1", BMPMessage.route_monitoring(make_peer(), update_announcing())
        )
        from repro.bmp.codec import decode_message

        (record,) = converter.convert("rtr1", decode_message(b"\x03\x00"))
        assert record.status == RecordStatus.CORRUPTED_RECORD
        assert record.time == 1000  # the router's last-seen time
        assert list(record.elems()) == []
        assert converter.corrupt_messages == 1
