"""End-to-end tests for the live BMP path: Kafka feed, stream, corsaro.

The load-bearing guarantee (ISSUE 5 acceptance): the same UPDATE sequence
delivered via BMP-over-broker yields an elem stream identical to the
MRT-file replay, at ``field_dict`` level, with filters and interning
applied.
"""

from __future__ import annotations

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import Community, CommunitySet
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bmp.convert import LIVE_PROJECT
from repro.bmp.messages import BMPMessage, BMPPeerHeader
from repro.bmp.source import (
    DEFAULT_BMP_TOPIC,
    BMPFeedProducer,
    BMPKafkaDataSource,
)
from repro.core.interfaces import (
    LiveDataInterface,
    SingleFileDataInterface,
    data_interface_names,
    make_data_interface,
)
from repro.core.record import RecordStatus
from repro.core.stream import BGPStream
from repro.kafka.broker import MessageBroker
from repro.mrt.records import BGP4MPMessage
from repro.mrt.writer import write_updates_dump

ROUTER = "rtr1.example"


def make_update(announce=(), withdraw=(), path="65001 65002 65010", communities=()):
    return BGPUpdate(
        announced=[Prefix.from_string(p) for p in announce],
        withdrawn=[Prefix.from_string(p) for p in withdraw],
        attributes=PathAttributes(
            as_path=ASPath.from_string(path),
            next_hop="10.1.2.3",
            communities=CommunitySet([Community(*c) for c in communities])
            if communities
            else None,
        ),
    )


def update_sequence():
    """(timestamp, peer_address, peer_asn, update) — two peers, mixed ops."""
    return [
        (1000, "10.1.2.3", 65001, make_update(announce=("203.0.113.0/24",))),
        (
            1010,
            "10.9.9.9",
            65009,
            make_update(
                announce=("198.51.100.0/24", "192.0.2.0/25"),
                path="65009 65010",
                communities=((65009, 300),),
            ),
        ),
        (1020, "10.1.2.3", 65001, make_update(withdraw=("203.0.113.0/24",))),
        (
            1030,
            "10.1.2.3",
            65001,
            make_update(announce=("203.0.113.0/24",), communities=((65001, 100), (65001, 200))),
        ),
    ]


def publish_sequence(broker, sequence, router=ROUTER):
    producer = BMPFeedProducer(broker, router=router)
    for timestamp, address, asn, update in sequence:
        peer = BMPPeerHeader(address=address, asn=asn, timestamp_sec=timestamp)
        producer.publish(BMPMessage.route_monitoring(peer, update))
    return producer


def mrt_dump_of(sequence, tmp_path):
    path = str(tmp_path / "updates.mrt")
    bodies = [
        (
            timestamp,
            BGP4MPMessage(
                peer_asn=asn,
                local_asn=0,
                peer_address=address,
                local_address="0.0.0.0",
                update=update,
            ),
        )
        for timestamp, address, asn, update in sequence
    ]
    write_updates_dump(path, bodies, compress=False)
    return path


def elem_signature(elem):
    return (str(elem.elem_type), elem.time, elem.peer_asn, elem.peer_address, elem.field_dict())


def live_stream(broker, **interface_options):
    interface = LiveDataInterface(
        broker=broker, max_empty_polls=1, poll_interval=0.0, **interface_options
    )
    return BGPStream(data_interface=interface)


class TestBMPKafkaDataSource:
    def test_round_trip_keyed_by_router(self):
        broker = MessageBroker()
        publish_sequence(broker, update_sequence())
        source = BMPKafkaDataSource(broker)
        pairs = source.poll()
        assert len(pairs) == 4
        assert {router for router, _ in pairs} == {ROUTER}
        assert all(message.is_valid for _, message in pairs)
        assert source.frames_decoded == 4
        assert source.poll() == []  # offsets committed

    def test_corrupt_frame_is_signalled_not_raised(self):
        broker = MessageBroker()
        producer = BMPFeedProducer(broker, router=ROUTER)
        good = BMPMessage.initiation([])
        producer.publish(good)
        producer.publish(good.encode()[:-2])  # truncated raw frame
        source = BMPKafkaDataSource(broker)
        pairs = source.poll()
        assert [message.is_valid for _, message in pairs] == [True, False]
        assert source.corrupt_frames == 1

    def test_seek_to_beginning_replays(self):
        broker = MessageBroker()
        publish_sequence(broker, update_sequence())
        source = BMPKafkaDataSource(broker)
        assert len(source.poll()) == 4
        source.seek_to_beginning()
        assert len(source.poll()) == 4

    def test_lag_and_default_topic(self):
        broker = MessageBroker()
        publish_sequence(broker, update_sequence())
        source = BMPKafkaDataSource(broker)
        assert source.topics == [DEFAULT_BMP_TOPIC]
        assert source.lag() == 4
        source.poll()
        assert source.lag() == 0


class TestLiveEquivalence:
    """BMP-over-broker and MRT-file replay must produce identical elems."""

    def equivalent_streams(self, tmp_path, filters=()):
        sequence = update_sequence()
        broker = MessageBroker()
        publish_sequence(broker, sequence)
        live = live_stream(broker)
        replay = BGPStream(
            data_interface=SingleFileDataInterface(
                mrt_dump_of(sequence, tmp_path),
                dump_type="updates",
                project=LIVE_PROJECT,
                collector=ROUTER,
            )
        )
        for stream in (live, replay):
            stream.add_interval_filter(900, 2000)
            for name, value in filters:
                stream.add_filter(name, value)
        return live, replay

    def test_unfiltered_equivalence(self, tmp_path):
        live, replay = self.equivalent_streams(tmp_path)
        live_elems = [elem_signature(e) for _, e in live.elems()]
        replay_elems = [elem_signature(e) for _, e in replay.elems()]
        assert live_elems == replay_elems
        assert len(live_elems) == 5  # 4 announcements + 1 withdrawal

    def test_equivalence_under_prefix_and_peer_filters(self, tmp_path):
        live, replay = self.equivalent_streams(
            tmp_path, filters=[("prefix-more", "203.0.113.0/24"), ("peer-asn", "65001")]
        )
        live_elems = [elem_signature(e) for _, e in live.elems()]
        replay_elems = [elem_signature(e) for _, e in replay.elems()]
        assert live_elems == replay_elems
        assert len(live_elems) == 3
        assert {s[3] for s in live_elems} == {"10.1.2.3"}

    def test_live_elems_are_interned(self, tmp_path):
        live, _ = self.equivalent_streams(tmp_path)
        elems = [e for _, e in live.elems()]
        first, last = elems[0], elems[-1]
        # same canonical AS path object through the stream's intern pool
        assert str(first.as_path) == str(last.as_path)
        assert first.as_path is last.as_path

    def test_record_metadata(self, tmp_path):
        sequence = update_sequence()
        broker = MessageBroker()
        publish_sequence(broker, sequence)
        records = list(live_stream(broker).records())
        assert all(r.project == LIVE_PROJECT for r in records)
        assert all(r.collector == ROUTER for r in records)
        assert all(r.router == ROUTER for r in records)
        assert [r.time for r in records] == [1000, 1010, 1020, 1030]


class TestBoundedWindows:
    def test_until_ts_closes_the_stream_deterministically(self):
        broker = MessageBroker()
        publish_sequence(broker, update_sequence())
        stream = live_stream(broker)
        stream.add_interval_filter(1000, 1015)
        times = [record.time for record in stream.records()]
        assert times == [1000, 1010]

    def test_empty_feed_terminates_on_max_empty_polls(self):
        stream = live_stream(MessageBroker())
        stream.add_interval_filter(0, None)
        assert list(stream.records()) == []

    def test_max_poll_messages_bounds_batches(self):
        broker = MessageBroker()
        publish_sequence(broker, update_sequence())
        interface = LiveDataInterface(
            broker=broker, max_empty_polls=1, poll_interval=0.0, max_poll_messages=1
        )
        batches = list(interface.record_batches(BGPStream().filters))
        assert [len(batch) for batch in batches] == [1, 1, 1, 1]

    def test_consecutive_windows_share_the_feed_without_loss(self):
        # Messages past until_ts must stay uncommitted in the log: a later
        # window on the same broker and consumer group (the next BGPCorsaro
        # bin) picks them up instead of silently losing everything fetched
        # by the poll that crossed the bin boundary.
        broker = MessageBroker()
        publish_sequence(broker, update_sequence())

        def window_times(start, end):
            stream = live_stream(broker)
            stream.add_interval_filter(start, end)
            return [record.time for record in stream.records()]

        assert window_times(1000, 1015) == [1000, 1010]
        assert window_times(1016, 1040) == [1020, 1030]

    def test_one_boundary_topic_does_not_close_the_window_early(self):
        # A held-back message on one topic must not end the window while
        # other topics still hold in-window messages that a bounded fetch
        # has not surfaced yet.
        broker = MessageBroker()
        ahead = BMPFeedProducer(broker, topic="feed-ahead", router="rtr-ahead")
        ahead.publish(
            BMPMessage.route_monitoring(
                BMPPeerHeader(address="10.9.9.9", asn=65009, timestamp_sec=2000),
                make_update(announce=("198.51.100.0/24",), path="65009 65010"),
            )
        )
        behind = BMPFeedProducer(broker, topic="feed-behind", router="rtr-behind")
        for i in range(10):
            peer = BMPPeerHeader(address="10.1.2.3", asn=65001, timestamp_sec=1000 + i)
            behind.publish(
                BMPMessage.route_monitoring(peer, make_update(announce=("203.0.113.0/24",)))
            )
        interface = LiveDataInterface(
            broker=broker,
            topics=["feed-ahead", "feed-behind"],
            max_empty_polls=1,
            poll_interval=0.0,
            max_poll_messages=4,
        )
        stream = BGPStream(live=interface)
        stream.add_interval_filter(1000, 1500)
        assert [record.time for record in stream.records()] == list(range(1000, 1010))
        # ... and the held-back message surfaces in the next window
        follow_up = BGPStream(
            live=LiveDataInterface(
                broker=broker,
                topics=["feed-ahead", "feed-behind"],
                max_empty_polls=1,
                poll_interval=0.0,
            )
        )
        follow_up.add_interval_filter(1501, 2500)
        assert [record.time for record in follow_up.records()] == [2000]

    def test_held_back_partition_heads_do_not_eat_the_poll_budget(self):
        # With more past-window partition heads than the poll budget, the
        # deferral cache must free the next fetch for the starved
        # partitions; otherwise the window closes having delivered nothing.
        broker = MessageBroker()
        topic = broker.create_topic("t", num_partitions=4)
        producer = BMPFeedProducer(broker, topic="t", num_partitions=4)
        router_on = {}
        i = 0
        while len(router_on) < 4:
            key = f"r{i}"
            i += 1
            router_on.setdefault(topic.partition_for(key), key)
        for partition, timestamp in [(0, 2000), (1, 2000), (2, 500), (3, 600)]:
            peer = BMPPeerHeader(address="10.1.2.3", asn=65001, timestamp_sec=timestamp)
            producer.publish(
                BMPMessage.route_monitoring(peer, make_update(announce=("203.0.113.0/24",))),
                router=router_on[partition],
            )

        def window_times(start, end):
            interface = LiveDataInterface(
                broker=broker,
                topics=["t"],
                max_empty_polls=1,
                poll_interval=0.0,
                max_poll_messages=2,
            )
            stream = BGPStream(live=interface)
            stream.add_interval_filter(start, end)
            return sorted(record.time for record in stream.records())

        assert window_times(0, 1000) == [500, 600]
        assert window_times(1001, 3000) == [2000, 2000]

    def test_straddling_batch_does_not_close_the_window_on_other_partitions(self):
        # A straddling frame batch on one partition is consumed whole and
        # its overhang discarded — but that must not end the window while
        # another partition still holds an unfetched in-window message.
        broker = MessageBroker()
        topic = broker.create_topic("t", num_partitions=2)
        producer = BMPFeedProducer(broker, topic="t", num_partitions=2)
        router_on = {}
        i = 0
        while len(router_on) < 2:
            key = f"r{i}"
            i += 1
            router_on.setdefault(topic.partition_for(key), key)
        straddle = bytearray()
        for timestamp in (990, 1010):
            peer = BMPPeerHeader(address="10.1.2.3", asn=65001, timestamp_sec=timestamp)
            straddle += BMPMessage.route_monitoring(
                peer, make_update(announce=("203.0.113.0/24",))
            ).encode()
        producer.publish(bytes(straddle), router=router_on[0])
        peer = BMPPeerHeader(address="10.9.9.9", asn=65009, timestamp_sec=995)
        producer.publish(
            BMPMessage.route_monitoring(
                peer, make_update(announce=("198.51.100.0/24",), path="65009 65010")
            ),
            router=router_on[1],
        )
        interface = LiveDataInterface(
            broker=broker,
            topics=["t"],
            max_empty_polls=1,
            poll_interval=0.0,
            max_poll_messages=1,
        )
        stream = BGPStream(live=interface)
        stream.add_interval_filter(0, 1000)
        assert sorted(record.time for record in stream.records()) == [990, 995]

    def test_boundary_frame_with_microseconds_belongs_to_the_window(self):
        # Records carry whole seconds: a frame at until_ts + microseconds
        # converts to record.time == until_ts and must be delivered in this
        # window, not held back (the next window's interval starts past it).
        broker = MessageBroker()
        producer = BMPFeedProducer(broker, router=ROUTER)
        peer = BMPPeerHeader(
            address="10.1.2.3", asn=65001, timestamp_sec=1000, timestamp_usec=500_000
        )
        producer.publish(
            BMPMessage.route_monitoring(peer, make_update(announce=("203.0.113.0/24",)))
        )
        stream = live_stream(broker)
        stream.add_interval_filter(900, 1000)
        assert [record.time for record in stream.records()] == [1000]

    def test_straddling_frame_batch_still_closes_the_window(self):
        # One Kafka message holding frames on both sides of the boundary
        # cannot be split by offset commits: it is consumed whole, the
        # overhang discarded, and the window still closes deterministically.
        broker = MessageBroker()
        producer = BMPFeedProducer(broker, router=ROUTER)
        frames = bytearray()
        for timestamp, address, asn, update in update_sequence():
            peer = BMPPeerHeader(address=address, asn=asn, timestamp_sec=timestamp)
            frames += BMPMessage.route_monitoring(peer, update).encode()
        producer.publish(bytes(frames))
        stream = live_stream(broker)
        stream.add_interval_filter(1000, 1015)
        assert [record.time for record in stream.records()] == [1000, 1010]

    def test_straddling_overhang_is_not_stranded_between_windows(self):
        # ISSUE 7 satellite: a Kafka message whose frames lie on both sides
        # of the boundary (sub-second stamps, 3 partitions, bounded budget)
        # is delivered whole but left *uncommitted* — the frames past the
        # boundary must surface in the next window, not vanish because the
        # straddler was committed and its overhang discarded.
        broker = MessageBroker()
        topic = broker.create_topic("t", num_partitions=3)
        producer = BMPFeedProducer(broker, topic="t", num_partitions=3)
        router_on = {}
        i = 0
        while len(router_on) < 3:
            key = f"r{i}"
            i += 1
            router_on.setdefault(topic.partition_for(key), key)
        for partition in range(3):
            frames = bytearray()
            for sec, usec in [(1000, 400_000 + partition), (1001, 200_000 + partition)]:
                peer = BMPPeerHeader(
                    address=f"10.0.{partition}.1",
                    asn=65001 + partition,
                    timestamp_sec=sec,
                    timestamp_usec=usec,
                )
                frames += BMPMessage.route_monitoring(
                    peer, make_update(announce=(f"203.0.{partition}.0/24",))
                ).encode()
            producer.publish(bytes(frames), router=router_on[partition])

        def window_times(start, end):
            interface = LiveDataInterface(
                broker=broker,
                topics=["t"],
                max_empty_polls=1,
                poll_interval=0.0,
                max_poll_messages=2,  # smaller than the partition count
            )
            stream = BGPStream(live=interface)
            stream.add_interval_filter(start, end)
            return sorted(record.time for record in stream.records())

        assert window_times(0, 1000) == [1000, 1000, 1000]
        # The overhang frames (1001.2s) survive the window boundary.
        assert window_times(1001, 2000) == [1001, 1001, 1001]

    def test_straddler_repolls_do_not_redeliver_within_one_window(self):
        # The delivered-but-uncommitted straddler must be skipped by later
        # polls of the same window (no duplicate elems, no budget eaten)
        # while the window still drains deterministically.
        broker = MessageBroker()
        topic = broker.create_topic("t", num_partitions=2)
        producer = BMPFeedProducer(broker, topic="t", num_partitions=2)
        router_on = {}
        i = 0
        while len(router_on) < 2:
            key = f"r{i}"
            i += 1
            router_on.setdefault(topic.partition_for(key), key)
        straddle = bytearray()
        for sec in (998, 1002):
            peer = BMPPeerHeader(address="10.1.2.3", asn=65001, timestamp_sec=sec)
            straddle += BMPMessage.route_monitoring(
                peer, make_update(announce=("203.0.113.0/24",))
            ).encode()
        producer.publish(bytes(straddle), router=router_on[0])
        for sec in (995, 996, 997):
            peer = BMPPeerHeader(address="10.9.9.9", asn=65009, timestamp_sec=sec)
            producer.publish(
                BMPMessage.route_monitoring(
                    peer, make_update(announce=("198.51.100.0/24",), path="65009 65010")
                ),
                router=router_on[1],
            )
        interface = LiveDataInterface(
            broker=broker,
            topics=["t"],
            max_empty_polls=1,
            poll_interval=0.0,
            max_poll_messages=1,  # straddler seen on poll 1, peers later
        )
        stream = BGPStream(live=interface)
        stream.add_interval_filter(0, 1000)
        times = sorted(record.time for record in stream.records())
        assert times == [995, 996, 997, 998]  # 998 exactly once, 1002 held
        # The straddling message is still uncommitted: its offset is the
        # committed position the next window's consumer resumes from.
        source = interface.source
        straddled_partition = next(iter(source._straddled_heads))[1]
        assert broker.committed_offset(
            source._consumer.group, "t", straddled_partition
        ) == next(iter(source._straddled_heads))[2]

    def test_all_partitions_deferred_with_exhausted_budget_still_drains(self):
        # ISSUE 7 satellite: every partition head lies past the boundary
        # and the poll budget is smaller than the partition count.  The
        # deferral cache must walk the heads over several polls, then set
        # window_drained so the (empty) window closes — held-back polls are
        # not "empty" polls, so termination hinges on the drained signal.
        broker = MessageBroker()
        topic = broker.create_topic("t", num_partitions=4)
        producer = BMPFeedProducer(broker, topic="t", num_partitions=4)
        router_on = {}
        i = 0
        while len(router_on) < 4:
            key = f"r{i}"
            i += 1
            router_on.setdefault(topic.partition_for(key), key)
        for partition in range(4):
            peer = BMPPeerHeader(
                address="10.1.2.3", asn=65001, timestamp_sec=2000 + partition
            )
            producer.publish(
                BMPMessage.route_monitoring(peer, make_update(announce=("203.0.113.0/24",))),
                router=router_on[partition],
            )

        def window_times(start, end, max_empty_polls):
            interface = LiveDataInterface(
                broker=broker,
                topics=["t"],
                max_empty_polls=max_empty_polls,
                poll_interval=0.0,
                max_poll_messages=2,
            )
            stream = BGPStream(live=interface)
            stream.add_interval_filter(start, end)
            return sorted(record.time for record in stream.records())

        # max_empty_polls=None: only window_drained may end the window —
        # if the drained signal were wrong this would hang, not pass.
        assert window_times(0, 1000, max_empty_polls=None) == []
        assert window_times(1001, 3000, max_empty_polls=1) == [2000, 2001, 2002, 2003]

    def test_batched_api_works_live(self):
        broker = MessageBroker()
        publish_sequence(broker, update_sequence())
        stream = live_stream(broker)
        records = [r for batch in stream.records_batched(2) for r in batch]
        assert [r.time for r in records] == [1000, 1010, 1020, 1030]

    def test_corrupt_frame_surfaces_as_invalid_record(self):
        broker = MessageBroker()
        producer = publish_sequence(broker, update_sequence()[:1])
        producer.publish(b"\x09garbage-frame")
        records = list(live_stream(broker).records())
        assert [r.status for r in records] == [
            RecordStatus.VALID,
            RecordStatus.CORRUPTED_RECORD,
        ]


class TestStreamConfiguration:
    def test_registry_names(self):
        assert {"broker", "csvfile", "sqlite", "singlefile", "kafka", "bmp"} <= set(
            data_interface_names()
        )

    def test_kafka_interface_by_name(self):
        broker = MessageBroker()
        publish_sequence(broker, update_sequence())
        stream = BGPStream(
            data_interface="kafka",
            interface_options={"broker": broker, "max_empty_polls": 1, "poll_interval": 0.0},
        )
        assert stream.is_live
        assert len(list(stream.records())) == 4

    def test_live_shortcut_dict(self):
        broker = MessageBroker()
        publish_sequence(broker, update_sequence())
        stream = BGPStream(live={"broker": broker, "max_empty_polls": 1, "poll_interval": 0.0})
        assert stream.is_live
        assert len(list(stream.records())) == 4

    def test_live_rejects_interface_options(self):
        with pytest.raises(ValueError, match="interface_options"):
            BGPStream(
                live={"broker": MessageBroker()},
                interface_options={"max_empty_polls": 1},
            )

    def test_live_and_data_interface_conflict(self):
        with pytest.raises(ValueError):
            BGPStream(data_interface="kafka", live={"broker": MessageBroker()})

    def test_live_rejects_parallel_engine(self):
        from repro.core.parallel import ParallelConfig

        stream = BGPStream(
            live={"broker": MessageBroker(), "max_empty_polls": 1},
            parallel=ParallelConfig(max_workers=2),
        )
        with pytest.raises(RuntimeError, match="parallel"):
            stream.start()

    def test_unknown_interface_name(self):
        with pytest.raises(ValueError, match="unknown data interface"):
            make_data_interface("carrier-pigeon")

    def test_interface_batches_guard(self):
        interface = LiveDataInterface(broker=MessageBroker())
        with pytest.raises(RuntimeError, match="record batches"):
            next(interface.batches(BGPStream().filters))

    def test_converter_and_converter_options_are_mutually_exclusive(self):
        from repro.bmp.convert import BMPRecordConverter

        with pytest.raises(ValueError, match="converter"):
            LiveDataInterface(
                broker=MessageBroker(),
                track_state=False,
                converter=BMPRecordConverter(),
            )

    def test_source_and_broker_are_mutually_exclusive(self):
        broker = MessageBroker()
        source = BMPKafkaDataSource(broker)
        with pytest.raises(ValueError):
            LiveDataInterface(source, broker=broker)
        with pytest.raises(ValueError):
            LiveDataInterface()


class TestPyBGPStreamLive:
    def test_listing1_idiom_over_live_feed(self):
        from repro.pybgpstream import BGPRecord, BGPStream as PyBGPStream

        broker = MessageBroker()
        publish_sequence(broker, update_sequence())
        stream = PyBGPStream(
            live={"broker": broker, "max_empty_polls": 1, "poll_interval": 0.0}
        )
        assert stream.is_live
        stream.add_filter("record-type", "updates")
        stream.add_interval_filter(900, 2000)
        stream.start()
        record = BGPRecord()
        seen = []
        while stream.get_next_record(record):
            elem = record.get_next_elem()
            while elem:
                seen.append((elem.type, elem.time, elem.fields.get("prefix")))
                elem = record.get_next_elem()
        assert len(seen) == 5
        assert seen[0] == ("A", 1000, "203.0.113.0/24")

    def test_named_interface_passthrough(self):
        from repro.pybgpstream import BGPStream as PyBGPStream

        broker = MessageBroker()
        publish_sequence(broker, update_sequence())
        stream = PyBGPStream(
            data_interface="kafka",
            interface_options={"broker": broker, "max_empty_polls": 1, "poll_interval": 0.0},
        )
        assert stream.is_live


class TestBGPReaderLive:
    def feed_file(self, tmp_path, include_session=True):
        peer = BMPPeerHeader(address="10.1.2.3", asn=65001, timestamp_sec=1000)
        messages = [BMPMessage.initiation([])]
        messages.append(
            BMPMessage.route_monitoring(peer, make_update(announce=("203.0.113.0/24",)))
        )
        if include_session:
            messages.append(BMPMessage.peer_down(peer, reason=4))
        path = tmp_path / "feed.bmp"
        path.write_bytes(b"".join(m.encode() for m in messages))
        return str(path)

    def run_reader(self, argv):
        import io

        from repro.core.reader import build_parser, run

        out = io.StringIO()
        status = run(build_parser().parse_args(argv), out)
        return status, out.getvalue().splitlines()

    def test_live_replay(self, tmp_path):
        status, lines = self.run_reader(["--live", self.feed_file(tmp_path)])
        assert status == 0
        assert any(line.startswith("A|1000|bmp|") for line in lines)
        # Peer Down synthesises the withdrawal then the state change
        assert any(line.startswith("W|1000|bmp|") for line in lines)
        assert any("ESTABLISHED|IDLE" in line for line in lines)

    def test_bmp_router_and_topic_knobs(self, tmp_path):
        status, lines = self.run_reader(
            [
                "--live",
                self.feed_file(tmp_path, include_session=False),
                "--bmp-topic",
                "custom.topic",
                "--bmp-router",
                "rtrX",
            ]
        )
        assert status == 0
        assert any("|rtrX|" in line for line in lines)

    def test_bmp_knobs_require_live(self, tmp_path):
        with pytest.raises(SystemExit, match="--live"):
            self.run_reader(["--archive", str(tmp_path), "--bmp-topic", "t"])

    def test_live_conflicts_with_parallel(self, tmp_path):
        with pytest.raises(SystemExit, match="--parallel"):
            self.run_reader(["--live", self.feed_file(tmp_path), "--parallel"])


class TestLiveCorsaro:
    def test_bins_close_deterministically_with_until_ts(self):
        from repro.corsaro.pipeline import BGPCorsaro
        from repro.corsaro.plugins import StatsPlugin

        broker = MessageBroker()
        sequence = [
            (ts, "10.1.2.3", 65001, make_update(announce=(f"10.{i}.0.0/16",)))
            for i, ts in enumerate([1000, 1100, 1250, 1400, 1550])
        ]
        publish_sequence(broker, sequence)
        stream = live_stream(broker)
        stream.add_interval_filter(900, 1500)  # until_ts closes the last bin
        corsaro = BGPCorsaro(stream, [StatsPlugin()], bin_size=300)
        outputs = [o for o in corsaro.process() if o.interval_start != -1]
        assert [o.interval_start for o in outputs] == [900, 1200]
        # 1000/1100 land in bin 900, 1250/1400 in bin 1200; 1550 is past
        # until_ts and never reaches a plugin.
        assert [o.value.as_dict()["elems"] for o in outputs] == [2, 2]
