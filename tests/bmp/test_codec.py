"""Golden round-trip and corruption-signalling tests for the BMP codec."""

from __future__ import annotations

import struct

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import Community, CommunitySet
from repro.bgp.message import BGPOpen, BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bmp.codec import BMPStreamParser, decode_message, scan_messages
from repro.bmp.constants import (
    BMP_VERSION,
    BMPInitiationTLVType,
    BMPMessageType,
    BMPPeerDownReason,
    BMPStatType,
    BMPTerminationReason,
    BMPTerminationTLVType,
)
from repro.bmp.messages import (
    BMPInfoTLV,
    BMPMessage,
    BMPPeerHeader,
    BMPStat,
    CorruptBMPMessage,
)


def make_peer(**overrides) -> BMPPeerHeader:
    defaults = dict(
        address="10.1.2.3",
        asn=65001,
        bgp_id="192.0.2.1",
        timestamp_sec=1_450_000_000,
        timestamp_usec=123_456,
    )
    defaults.update(overrides)
    return BMPPeerHeader(**defaults)


def make_update() -> BGPUpdate:
    return BGPUpdate(
        withdrawn=[Prefix.from_string("198.51.100.0/24")],
        announced=[Prefix.from_string("203.0.113.0/24"), Prefix.from_string("192.0.2.0/25")],
        attributes=PathAttributes(
            as_path=ASPath.from_string("65001 65002 65003"),
            next_hop="10.1.2.3",
            communities=CommunitySet([Community(65001, 100)]),
        ),
    )


def all_six_messages() -> list:
    peer = make_peer()
    return [
        BMPMessage.initiation(
            [
                BMPInfoTLV(BMPInitiationTLVType.SYS_NAME, b"rtr1.example"),
                BMPInfoTLV(BMPInitiationTLVType.SYS_DESCR, b"test router"),
            ]
        ),
        BMPMessage.peer_up(
            peer,
            local_address="10.0.0.1",
            local_port=179,
            remote_port=40123,
            sent_open=BGPOpen(asn=65000, hold_time=90, bgp_id="10.0.0.1"),
            received_open=BGPOpen(
                asn=65001, hold_time=90, bgp_id="192.0.2.1", opt_params=b"\x02\x00"
            ),
            information=[BMPInfoTLV(0, b"session up")],
        ),
        BMPMessage.route_monitoring(peer, make_update()),
        BMPMessage.stats_report(
            peer,
            [
                BMPStat(BMPStatType.REJECTED_PREFIXES, 7),
                BMPStat(BMPStatType.ROUTES_ADJ_RIB_IN, 2**40),  # 64-bit gauge
            ],
        ),
        BMPMessage.peer_down(
            peer, BMPPeerDownReason.LOCAL_FSM, struct.pack("!H", 23)
        ),
        BMPMessage.termination(
            [
                BMPInfoTLV(
                    BMPTerminationTLVType.REASON,
                    struct.pack("!H", BMPTerminationReason.ADMINISTRATIVELY_CLOSED),
                )
            ]
        ),
    ]


class TestGoldenRoundTrips:
    @pytest.mark.parametrize("message", all_six_messages(), ids=lambda m: m.msg_type.name)
    def test_encode_decode_lossless(self, message):
        wire = message.encode()
        decoded = decode_message(wire)
        assert decoded.is_valid
        assert decoded.msg_type == message.msg_type
        assert decoded.body == message.body
        assert decoded.encode() == wire

    def test_back_to_back_stream(self):
        messages = all_six_messages()
        blob = b"".join(m.encode() for m in messages)
        decoded = scan_messages(blob)
        assert [m.msg_type for m in decoded] == [m.msg_type for m in messages]
        assert all(m.is_valid for m in decoded)
        assert [m.body for m in decoded] == [m.body for m in messages]

    def test_ipv6_peer_and_prefixes(self):
        peer = make_peer(address="2001:db8::1")
        update = BGPUpdate(
            attributes=PathAttributes(
                as_path=ASPath.from_string("65001"),
                mp_next_hop="2001:db8::1",
                mp_reach_nlri=[Prefix.from_string("2001:db8:1::/48")],
            )
        )
        message = BMPMessage.route_monitoring(peer, update)
        decoded = decode_message(message.encode())
        assert decoded.is_valid
        assert decoded.peer.address == "2001:db8::1"
        assert decoded.peer.version == 6
        assert decoded.body.update.all_announced == [Prefix.from_string("2001:db8:1::/48")]

    def test_peer_up_local_address_family_independent_of_peer_flag(self):
        # An IPv4 session can be monitored from an IPv6 local address and
        # vice versa: the family must round-trip from the field content,
        # not the peer header's V flag.
        v6_local = BMPMessage.peer_up(
            make_peer(address="10.0.0.1"), local_address="2001:db8::1"
        )
        decoded = decode_message(v6_local.encode())
        assert decoded.is_valid
        assert decoded.body.local_address == "2001:db8::1"
        v4_local = BMPMessage.peer_up(
            make_peer(address="2001:db8::9"), local_address="192.0.2.7"
        )
        decoded = decode_message(v4_local.encode())
        assert decoded.is_valid
        assert decoded.body.local_address == "192.0.2.7"

    def test_unknown_stat_type_round_trips_as_raw_bytes(self):
        # RFC 7854 defines stat types beyond the enum (per-AFI/SAFI gauges
        # carry 2-byte AFI + 1-byte SAFI + 8-byte gauge) and vendors add
        # more; they are length-delimited and must round-trip, not corrupt
        # the whole report.
        afi_safi_gauge = struct.pack("!HB", 1, 1) + (2**33).to_bytes(8, "big")
        message = BMPMessage.stats_report(
            make_peer(),
            [
                BMPStat(BMPStatType.REJECTED_PREFIXES, 7),
                BMPStat(9, afi_safi_gauge),
                BMPStat(0xFFFF, b"vendor-blob"),
            ],
        )
        decoded = decode_message(message.encode())
        assert decoded.is_valid
        assert decoded.body.stats == message.body.stats
        assert decoded.encode() == message.encode()

    def test_known_stat_type_with_wrong_length_is_corrupt(self):
        peer = make_peer()
        body = peer.encode() + struct.pack("!I", 1) + struct.pack("!HH", 0, 8) + b"\x00" * 8
        blob = struct.pack(
            "!BIB", BMP_VERSION, 6 + len(body), int(BMPMessageType.STATISTICS_REPORT)
        ) + body
        decoded = decode_message(blob)
        assert not decoded.is_valid
        assert "implausible length" in decoded.body.reason

    def test_peer_header_microsecond_timestamp(self):
        peer = make_peer(timestamp_sec=100, timestamp_usec=250_000)
        decoded = decode_message(BMPMessage.route_monitoring(peer, BGPUpdate()).encode())
        assert decoded.peer.timestamp_sec == 100
        assert decoded.peer.timestamp_usec == 250_000
        assert decoded.peer.timestamp == pytest.approx(100.25)

    def test_termination_reason_accessor(self):
        message = all_six_messages()[-1]
        decoded = decode_message(message.encode())
        assert decoded.body.reason == BMPTerminationReason.ADMINISTRATIVELY_CLOSED

    def test_peer_down_fsm_code(self):
        decoded = decode_message(all_six_messages()[4].encode())
        assert decoded.body.reason == BMPPeerDownReason.LOCAL_FSM
        assert decoded.body.fsm_code == 23


class TestCorruptionSignalling:
    def test_truncated_tail_is_signalled_not_raised(self):
        blob = b"".join(m.encode() for m in all_six_messages())
        decoded = scan_messages(blob[:-10])
        assert len(decoded) == 6
        assert all(m.is_valid for m in decoded[:-1])
        assert isinstance(decoded[-1].body, CorruptBMPMessage)
        assert "truncated" in decoded[-1].body.reason

    def test_bad_version_kills_framing(self):
        good = all_six_messages()[2].encode()
        bad = bytes([9]) + good[1:]
        decoded = scan_messages(good + bad + good)
        # one good message, one corruption signal, nothing after
        assert [m.is_valid for m in decoded] == [True, False]
        assert "version" in decoded[1].body.reason

    def test_implausible_length_kills_framing(self):
        frame = struct.pack("!BIB", BMP_VERSION, 2**31, 0)
        decoded = scan_messages(frame)
        assert len(decoded) == 1 and not decoded[0].is_valid
        assert "implausible" in decoded[0].body.reason

    def test_unknown_message_type_is_per_frame(self):
        good = all_six_messages()[0].encode()
        unknown = struct.pack("!BIB", BMP_VERSION, 8, 99) + b"\x00\x00"
        decoded = scan_messages(unknown + good)
        # framing survives an unknown type: the good frame still decodes
        assert [m.is_valid for m in decoded] == [False, True]
        assert decoded[0].msg_type is None

    def test_corrupt_update_inside_route_monitoring(self):
        peer = make_peer()
        wire = bytearray(BMPMessage.route_monitoring(peer, make_update()).encode())
        wire[48:64] = b"\x00" * 16  # stomp the embedded UPDATE's BGP marker
        good = BMPMessage.initiation([]).encode()
        decoded = scan_messages(bytes(wire) + good)
        assert [m.is_valid for m in decoded] == [False, True]
        assert decoded[0].msg_type == BMPMessageType.ROUTE_MONITORING

    def test_stats_with_wrong_width_is_corrupt(self):
        peer = make_peer()
        body = peer.encode() + struct.pack("!I", 1) + struct.pack("!HH", 0, 8) + b"\x00" * 8
        frame = struct.pack("!BIB", BMP_VERSION, 6 + len(body), 1) + body
        decoded = decode_message(frame)
        assert not decoded.is_valid
        assert "implausible length" in decoded.body.reason

    def test_decode_message_length_mismatch(self):
        wire = all_six_messages()[0].encode()
        assert not decode_message(wire + b"\x00").is_valid
        assert not decode_message(wire[:-1]).is_valid
        assert not decode_message(b"\x03\x00").is_valid


class TestIncrementalParser:
    def test_byte_at_a_time_feed(self):
        messages = all_six_messages()
        blob = b"".join(m.encode() for m in messages)
        parser = BMPStreamParser()
        seen = []
        for i in range(len(blob)):
            parser.feed(blob[i : i + 1])
            seen.extend(parser.messages())
        seen.extend(parser.finish())
        assert [m.msg_type for m in seen] == [m.msg_type for m in messages]
        assert all(m.is_valid for m in seen)
        assert parser.messages_decoded == len(messages)
        assert parser.corrupt_messages == 0
        assert parser.pending_bytes == 0

    def test_partial_tail_waits_then_completes(self):
        wire = all_six_messages()[2].encode()
        parser = BMPStreamParser()
        parser.feed(wire[:10])
        assert list(parser.messages()) == []
        parser.feed(wire[10:])
        (message,) = list(parser.messages())
        assert message.is_valid

    def test_finish_flushes_truncated_tail(self):
        wire = all_six_messages()[2].encode()
        parser = BMPStreamParser()
        parser.feed(wire[: len(wire) - 3])
        assert list(parser.messages()) == []
        flushed = list(parser.finish())
        assert len(flushed) == 1 and not flushed[0].is_valid
        assert parser.corrupt_messages == 1

    def test_abandoned_iterator_does_not_redeliver(self):
        # Breaking out of messages() mid-drain must still trim the consumed
        # frames: the next call may not re-yield (or re-count) them.
        messages = all_six_messages()
        parser = BMPStreamParser()
        parser.feed(b"".join(m.encode() for m in messages))
        first = None
        for first in parser.messages():
            break
        rest = list(parser.messages())
        assert [m.msg_type for m in [first] + rest] == [m.msg_type for m in messages]
        assert parser.messages_decoded == len(messages)
        assert parser.corrupt_messages == 0
        assert parser.pending_bytes == 0

    def test_dead_parser_ignores_further_input(self):
        parser = BMPStreamParser()
        parser.feed(bytes([9]) + b"\x00" * 10)
        assert [m.is_valid for m in parser.messages()] == [False]
        assert parser.dead
        parser.feed(all_six_messages()[0].encode())
        assert list(parser.messages()) == []
