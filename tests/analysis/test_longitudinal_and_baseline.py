"""Tests for the longitudinal dataset generator and the bgpdump baseline."""

from __future__ import annotations


from repro.baseline.bgpdump import BGPDumpBaseline, bgpdump_file, parse_bgpdump_line
from repro.collectors.topology import ASRole
from repro.mrt import read_dump


class TestLongitudinalGenerator:
    def test_monthly_snapshots_cover_every_month(self, longitudinal_scenario):
        snapshots = longitudinal_scenario.snapshots
        assert len(snapshots) == longitudinal_scenario.config.months
        timestamps = [s.timestamp for s in snapshots]
        assert timestamps == sorted(timestamps)
        assert all(s.dumps for s in snapshots)

    def test_as_count_grows_monotonically(self, longitudinal_scenario):
        counts = [len(s.active_asns) for s in longitudinal_scenario.snapshots]
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        assert counts[-1] > counts[0]

    def test_prefix_counts_grow(self, longitudinal_scenario):
        v4 = [s.prefix_count_v4 for s in longitudinal_scenario.snapshots]
        assert v4[-1] > v4[0]
        assert all(b >= a for a, b in zip(v4, v4[1:]))

    def test_ipv6_appears_later_than_ipv4(self, longitudinal_scenario):
        v6 = [s.prefix_count_v6 for s in longitudinal_scenario.snapshots]
        assert v6[0] == 0
        assert v6[-1] > 0

    def test_providers_always_present_before_customers(self, longitudinal_scenario):
        scenario = longitudinal_scenario
        for month in (0, scenario.config.months // 2, scenario.config.months - 1):
            topology = scenario.monthly_topology(month)
            for asn in topology.asns():
                if topology.node(asn).role != ASRole.TIER1:
                    assert topology.providers(asn), f"AS{asn} orphaned in month {month}"

    def test_dumps_parse_and_carry_both_projects(self, longitudinal_archive):
        entries = longitudinal_archive.entries()
        assert {e.project for e in entries} == {"ris", "routeviews"}
        sample = entries[0]
        records = read_dump(sample.path)
        assert records and all(r.is_valid for r in records)


class TestBGPDumpBaseline:
    def test_single_file_ascii_lines(self, longitudinal_archive):
        entry = longitudinal_archive.entries()[0]
        lines = list(bgpdump_file(entry.path, dump_type="ribs"))
        assert lines
        assert all(line.startswith("TABLE_DUMP2|") for line in lines)
        parsed = parse_bgpdump_line(lines[0])
        assert parsed is not None
        assert parsed.elem_type == "B"
        assert parsed.prefix

    def test_missing_file_produces_no_output(self, tmp_path):
        assert list(bgpdump_file(str(tmp_path / "missing.mrt"))) == []

    def test_baseline_does_not_interleave_files(self, corsaro_archive):
        # Three early files from each collector, processed collector after
        # collector (the typical "for f in downloaded files" loop).
        by_collector = {}
        for entry in sorted(
            (e for e in corsaro_archive.entries() if e.dump_type == "updates"),
            key=lambda e: e.timestamp,
        ):
            by_collector.setdefault(entry.collector, []).append(entry)
        updates = []
        for collector in sorted(by_collector):
            updates.extend(by_collector[collector][:3])
        baseline = BGPDumpBaseline([(e.path, e.dump_type) for e in updates])
        timestamps = baseline.timestamps()
        assert timestamps
        assert baseline.lines_emitted >= len(timestamps)
        # File-at-a-time output is NOT globally sorted (that is the point of
        # the comparison with the BGPStream merge).
        assert timestamps != sorted(timestamps)

    def test_parse_rejects_garbage(self):
        assert parse_bgpdump_line("not|a|line") is None
        assert parse_bgpdump_line("BGP4MP|xx|A|1.2.3.4|bad") is None
