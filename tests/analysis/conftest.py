"""Fixtures for the longitudinal analyses: a small multi-month archive."""

from __future__ import annotations

import pytest

from repro.collectors.archive import Archive
from repro.collectors.longitudinal import LongitudinalConfig, LongitudinalScenario
from repro.collectors.topology import TopologyConfig


@pytest.fixture(scope="session")
def longitudinal_scenario() -> LongitudinalScenario:
    config = LongitudinalConfig(
        months=12,
        topology=TopologyConfig(num_tier1=4, num_transit=16, num_stub=60, seed=41),
        vps_per_collector=5,
        moas_fraction=0.05,
        seed=42,
    )
    return LongitudinalScenario(config)


@pytest.fixture(scope="session")
def longitudinal_archive(tmp_path_factory, longitudinal_scenario) -> Archive:
    archive = Archive(str(tmp_path_factory.mktemp("longitudinal-archive")))
    longitudinal_scenario.generate(archive)
    return archive


@pytest.fixture(scope="session")
def month_timestamps(longitudinal_scenario):
    return [s.timestamp for s in longitudinal_scenario.snapshots]
