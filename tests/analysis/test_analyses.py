"""Tests for the Section 4.2 / Section 5 analyses over the longitudinal archive."""

from __future__ import annotations

import pytest

from repro.analysis.communities import analyse_communities
from repro.analysis.mapreduce import MapReduceDriver
from repro.analysis.moas import analyse_moas
from repro.analysis.path_inflation import analyse_path_inflation
from repro.analysis.rib_growth import analyse_rib_growth
from repro.analysis.transit import analyse_transit
from repro.broker.broker import Broker
from repro.core.interfaces import BrokerDataInterface
from repro.core.stream import BGPStream


def _rib_stream(archive, timestamp, window=3600):
    stream = BGPStream(data_interface=BrokerDataInterface(Broker(archives=[archive])))
    stream.add_interval_filter(timestamp, timestamp + window)
    stream.add_filter("record-type", "ribs")
    return stream


class TestMapReduceDriver:
    def test_partitions_per_timestamp_and_collector(self, longitudinal_archive, month_timestamps):
        driver = MapReduceDriver(longitudinal_archive, lambda s, p: 0)
        partitions = driver.partitions_for(month_timestamps[:2])
        collectors = longitudinal_archive.collectors()
        assert len(partitions) == 2 * len(collectors)

    def test_map_runs_function_per_partition(self, longitudinal_archive, month_timestamps):
        def count_records(stream, partition):
            return sum(1 for _ in stream.records())

        driver = MapReduceDriver(longitudinal_archive, count_records, workers=2)
        partitions = driver.partitions_for(month_timestamps[:1])
        results = driver.map(partitions)
        assert len(results) == len(partitions)
        assert all(count > 0 for _partition, count in results)

    def test_map_reduce_applies_reducer(self, longitudinal_archive, month_timestamps):
        driver = MapReduceDriver(longitudinal_archive, lambda s, p: 1, workers=1)
        partitions = driver.partitions_for(month_timestamps[:1])
        total = driver.map_reduce(partitions, lambda results: sum(v for _p, v in results))
        assert total == len(partitions)


class TestPathInflation:
    def test_listing1_on_latest_month(self, longitudinal_archive, month_timestamps):
        stream = _rib_stream(longitudinal_archive, month_timestamps[-1])
        result = analyse_path_inflation(stream)
        assert result.pairs_examined > 0
        # Policy routing inflates a meaningful share of paths, never all.
        assert 0.0 < result.inflated_fraction < 1.0
        assert result.max_extra_hops >= 1
        assert sum(result.inflation_histogram.values()) == result.pairs_examined
        assert result.inflation_histogram.get(0, 0) + result.inflated_pairs == result.pairs_examined


class TestRIBGrowth:
    @pytest.fixture(scope="class")
    def growth(self, longitudinal_archive, month_timestamps):
        return analyse_rib_growth(longitudinal_archive, month_timestamps, workers=2)

    def test_table_sizes_grow_over_time(self, growth, month_timestamps):
        sizes = [growth.max_table_size(month) for month in month_timestamps]
        assert sizes[-1] > sizes[0] > 0

    def test_full_and_partial_feeds_identified(
        self, growth, month_timestamps, longitudinal_scenario
    ):
        month = month_timestamps[-1]
        full = growth.full_feed_vps(month)
        partial = growth.partial_feed_vps(month)
        assert full
        # The generator creates both kinds of VPs with high probability.
        expected_partial = sum(
            1
            for collector in longitudinal_scenario.collectors
            for vp in collector.vps
            if not vp.full_feed
        )
        if expected_partial:
            assert partial
            # Partial feeds are much smaller than the maximum.
            sizes = growth.per_vp[month]
            maximum = growth.max_table_size(month)
            assert all(sizes[vp] < 0.8 * maximum for vp in partial)

    def test_overall_and_asn_counts_track_growth(self, growth, month_timestamps):
        assert growth.overall[month_timestamps[-1]] >= growth.overall[month_timestamps[0]]
        assert growth.unique_asns[month_timestamps[-1]] > growth.unique_asns[month_timestamps[0]]


class TestMOASAnalysis:
    @pytest.fixture(scope="class")
    def moas(self, longitudinal_archive, month_timestamps):
        return analyse_moas(longitudinal_archive, month_timestamps, workers=2)

    def test_moas_sets_grow_over_time(self, moas, month_timestamps):
        counts = dict(moas.overall_counts())
        assert counts[month_timestamps[-1]] >= counts[month_timestamps[0]]
        assert counts[month_timestamps[-1]] > 0

    def test_overall_never_below_any_single_collector(self, moas, month_timestamps):
        """The Figure 5b headline: aggregate >= any single collector, every month."""
        for month in month_timestamps:
            overall = len(moas.overall[month])
            best_single = moas.max_single_collector_count(month)
            assert overall >= best_single


class TestTransitAnalysis:
    @pytest.fixture(scope="class")
    def transit(self, longitudinal_archive, month_timestamps):
        return analyse_transit(longitudinal_archive, month_timestamps, workers=2)

    def test_ipv4_fraction_roughly_constant(self, transit, month_timestamps):
        """IPv4 transit fraction stays in a narrow band while the AS count grows.

        (At laptop scale the band is wider than on the real Internet — a few
        tens of transit ASes dominate a small early topology — but there is
        no collapse or explosion of the fraction.)
        """
        fractions = [transit.transit_fraction(m, 4) for m in month_timestamps]
        assert all(0.1 < f < 0.6 for f in fractions)
        assert max(fractions) - min(fractions) < 0.2

    def test_ipv4_as_count_grows(self, transit, month_timestamps):
        counts = [transit.total_asns[m][4] for m in month_timestamps]
        assert counts[-1] > counts[0]

    def test_ipv6_arrives_later_with_higher_transit_fraction(self, transit, month_timestamps):
        v6_counts = [transit.total_asns[m][6] for m in month_timestamps]
        assert v6_counts[0] == 0
        assert v6_counts[-1] > 0
        last = month_timestamps[-1]
        assert transit.transit_fraction(last, 6) > transit.transit_fraction(last, 4)


class TestCommunityAnalysis:
    def test_per_vp_diversity_and_stripping(self, longitudinal_archive, month_timestamps):
        result = analyse_communities(longitudinal_archive, [month_timestamps[-1]], workers=2)
        assert result.total_communities > 0
        counts = result.vp_identifier_counts()
        assert counts
        # Collector aggregation is at least as diverse as any of its VPs.
        for (collector, _asn), count in counts.items():
            assert len(result.per_collector[collector]) >= count
        # Projects aggregate their collectors.
        assert result.per_project
        assert 0.0 < result.observing_fraction() <= 1.0
        assert result.top_collectors(1)
